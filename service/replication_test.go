package service

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	correlated "github.com/streamagg/correlated"
	"github.com/streamagg/correlated/client"
	"github.com/streamagg/correlated/internal/wal"
)

// waitUntil polls cond until it holds or the deadline passes.
func waitUntil(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// tcpProxy relays one TCP target so a test can sever the link — the
// replica's view of a primary dying mid-stream — without being able to
// kill -9 an in-process server.
type tcpProxy struct {
	ln     net.Listener
	target string
	mu     sync.Mutex
	conns  []net.Conn
	closed bool
}

func newProxy(t *testing.T, target string) *tcpProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &tcpProxy{ln: ln, target: target}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			up, err := net.Dial("tcp", target)
			if err != nil {
				c.Close()
				continue
			}
			p.mu.Lock()
			if p.closed {
				p.mu.Unlock()
				c.Close()
				up.Close()
				return
			}
			p.conns = append(p.conns, c, up)
			p.mu.Unlock()
			go func() { io.Copy(up, c); up.Close() }()
			go func() { io.Copy(c, up); c.Close() }()
		}
	}()
	t.Cleanup(p.Close)
	return p
}

func (p *tcpProxy) Addr() string { return p.ln.Addr().String() }

// Close severs every relayed connection and stops accepting: from the
// replica's side the primary has gone dark.
func (p *tcpProxy) Close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	p.closed = true
	p.ln.Close()
	for _, c := range p.conns {
		c.Close()
	}
}

// newReplica builds a replica following addr and serves its HTTP API.
func newReplica(t *testing.T, o correlated.Options, addr string, mutate func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	cfg := Config{Options: o, Shards: 2, PrimaryAddr: addr}
	if mutate != nil {
		mutate(&cfg)
	}
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	return svc, ts
}

// TestReplicaFollowsAndServesReads: a replica attached to a primary's
// stream listener converges to the primary's exact per-tenant state,
// serves the read path from it, reports lag bookkeeping in stats, and
// refuses writes with the 503 the client maps to IsReadOnly.
func TestReplicaFollowsAndServesReads(t *testing.T) {
	o := testOptions()
	dir := t.TempDir()
	primary, pts, pcl := newTestServer(t, Config{
		Options: o, Shards: 2, WALDir: dir, WALFsync: "always",
		HeartbeatInterval: 20 * time.Millisecond,
	})
	addr := startStream(t, primary)
	replicaSvc, rts := newReplica(t, o, addr, nil)

	ctx := context.Background()
	if err := pcl.AddBatch(ctx, testStream(5_000, 1)); err != nil {
		t.Fatal(err)
	}
	acmeCl := client.New(pts.URL, client.WithTenant("acme"))
	if err := acmeCl.AddBatch(ctx, testStream(2_000, 2)); err != nil {
		t.Fatal(err)
	}

	last := primary.walRef().LastLSN()
	waitUntil(t, 10*time.Second, "replica catch-up", func() bool {
		return replicaSvc.appliedLSN.Load() >= last
	})

	for _, tenant := range []string{"", "acme"} {
		pc := client.New(pts.URL, client.WithTenant(tenant))
		rc := client.New(rts.URL, client.WithTenant(tenant))
		want, err := pc.Summary(ctx)
		if err != nil {
			t.Fatal(err)
		}
		got, err := rc.Summary(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want, got) {
			t.Fatalf("tenant %q: replica summary differs from primary (%d vs %d bytes)", tenant, len(got), len(want))
		}
		pe, err := pc.QueryLE(ctx, 150)
		if err != nil {
			t.Fatal(err)
		}
		re, err := rc.QueryLE(ctx, 150)
		if err != nil {
			t.Fatal(err)
		}
		if pe != re {
			t.Fatalf("tenant %q: query diverges: primary %v replica %v", tenant, pe, re)
		}
	}

	rcl := client.New(rts.URL, client.WithRetries(0))
	st, err := rcl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Role != "replica" || st.ReplicaOf != addr || st.ReplicaAppliedLSN < last {
		t.Fatalf("replica stats wrong: %+v", st)
	}
	if st.Promoted {
		t.Fatal("unpromoted replica reports promoted")
	}

	if err := rcl.AddBatch(ctx, testStream(10, 3)); !client.IsReadOnly(err) {
		t.Fatalf("replica accepted ingest: %v", err)
	}
	if err := rcl.Push(ctx, []byte{0}); !client.IsReadOnly(err) {
		t.Fatalf("replica accepted push: %v", err)
	}

	// The primary's metrics surface sees the attached follower.
	resp, err := http.Get(pts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "corrd_replica_conns 1") {
		t.Fatal("primary metrics do not report the replica connection")
	}
}

// TestReplicaSnapshotCatchup: a replica that starts behind the
// primary's prune horizon is re-seeded with a snapshot frame and still
// converges byte-exactly.
func TestReplicaSnapshotCatchup(t *testing.T) {
	o := testOptions()
	dir := t.TempDir()
	snap := dir + "/state.snapshot"
	primary, pts, pcl := newTestServer(t, Config{
		Options: o, Shards: 2, WALDir: dir + "/wal", WALFsync: "always",
		SnapshotPath: snap, SnapshotInterval: time.Hour,
		WALSegmentBytes:   4 << 10, // rotate early so checkpoints prune
		HeartbeatInterval: 20 * time.Millisecond,
	})
	ctx := context.Background()
	for i := uint64(0); i < 8; i++ {
		if err := pcl.AddBatch(ctx, testStream(2_000, 10+i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := primary.Snapshot(); err != nil { // checkpoint + prune
		t.Fatal(err)
	}
	if got := primary.walRef().Stats().Segments; got > 1 {
		t.Fatalf("checkpoint did not prune: %d segments", got)
	}

	addr := startStream(t, primary)
	replicaSvc, rts := newReplica(t, o, addr, nil)
	last := primary.walRef().LastLSN()
	waitUntil(t, 10*time.Second, "seeded replica catch-up", func() bool {
		return replicaSvc.appliedLSN.Load() >= last
	})
	if replicaSvc.metrics.replicaSnapshotsInstalled.Load() == 0 {
		t.Fatal("replica caught up without a snapshot install; prune horizon was not exercised")
	}

	// Convergence must survive a snapshot seed + live records on top.
	if err := pcl.AddBatch(ctx, testStream(1_000, 99)); err != nil {
		t.Fatal(err)
	}
	last = primary.walRef().LastLSN()
	waitUntil(t, 10*time.Second, "post-seed catch-up", func() bool {
		return replicaSvc.appliedLSN.Load() >= last
	})
	want, err := client.New(pts.URL).Summary(ctx)
	if err != nil {
		t.Fatal(err)
	}
	got, err := client.New(rts.URL).Summary(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Fatal("snapshot-seeded replica summary differs from primary")
	}
}

// TestFailoverByteIdentity is the acceptance criterion: the primary
// dies mid-ingest (its link severed, WAL left on disk exactly as acked,
// like kill -9 under fsync=always), the replica is promoted, and the
// promoted server's per-tenant /v1/summary bytes must equal a
// crash-free oracle's — a fresh server replaying the primary's own WAL
// to exactly the sealed LSN. Run under -race in CI.
func TestFailoverByteIdentity(t *testing.T) {
	o := testOptions()
	dir := t.TempDir()
	primary, pts, _ := newTestServer(t, Config{
		Options: o, Shards: 2, WALDir: dir, WALFsync: "always",
		HeartbeatInterval: 20 * time.Millisecond,
	})
	addr := startStream(t, primary)
	proxy := newProxy(t, addr)
	replicaDir := t.TempDir()
	replicaSvc, rts := newReplica(t, o, proxy.Addr(), func(c *Config) {
		c.WALDir = replicaDir
		c.WALFsync = "always"
	})

	ctx := context.Background()
	tenants := []string{"", "acme", "beta"}
	ingest := func(round uint64) {
		for i, tenant := range tenants {
			cl := client.New(pts.URL, client.WithTenant(tenant))
			if err := cl.AddBatch(ctx, testStream(1_500, round*10+uint64(i))); err != nil {
				t.Fatal(err)
			}
		}
	}
	ingest(1)
	ingest(2)
	waitUntil(t, 10*time.Second, "replica to apply some records", func() bool {
		return replicaSvc.appliedLSN.Load() >= 3
	})

	// The primary "dies": the replication link drops mid-stream, but the
	// primary's acked writes keep landing for a moment (the failover
	// window), so its WAL runs ahead of what the replica ever saw.
	proxy.Close()
	ingest(3)

	if err := replicaSvc.Promote(); err != nil {
		t.Fatalf("promote: %v", err)
	}
	sealed := replicaSvc.appliedLSN.Load()
	if sealed == 0 || sealed >= primary.walRef().LastLSN() {
		t.Fatalf("test did not exercise a mid-stream seal: sealed=%d primary=%d", sealed, primary.walRef().LastLSN())
	}

	// Crash-free oracle: replay the primary's own WAL to exactly the
	// sealed LSN on a fresh engine registry.
	primaryWAL := primary.walRef()
	oracle, err := New(Config{Options: o, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	ots := httptest.NewServer(oracle.Handler())
	t.Cleanup(func() {
		ots.Close()
		oracle.Close()
	})
	st := newReplayState(0, true)
	errPastSeal := errors.New("past seal")
	err = primaryWAL.Replay(0, func(lsn uint64, typ wal.RecordType, payload []byte) error {
		if lsn > sealed {
			return errPastSeal
		}
		_, aerr := oracle.applyRecord(lsn, typ, payload, st)
		return aerr
	})
	if err != nil && !errors.Is(err, errPastSeal) {
		t.Fatalf("oracle replay: %v", err)
	}

	for _, tenant := range tenants {
		want, err := client.New(ots.URL, client.WithTenant(tenant)).Summary(ctx)
		if err != nil {
			t.Fatal(err)
		}
		got, err := client.New(rts.URL, client.WithTenant(tenant)).Summary(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want, got) {
			t.Fatalf("tenant %q: promoted replica differs from crash-free oracle at LSN %d (%d vs %d bytes)",
				tenant, sealed, len(got), len(want))
		}
	}

	// The promoted server is a primary now: it accepts writes, its own
	// WAL continues the sealed LSN space, and stats say so.
	rcl := client.New(rts.URL)
	if err := rcl.AddBatch(ctx, testStream(100, 77)); err != nil {
		t.Fatalf("promoted replica refused a write: %v", err)
	}
	if w := replicaSvc.walRef(); w == nil {
		t.Fatal("promoted replica has no WAL")
	} else if first := sealed + 1; w.LastLSN() < first {
		t.Fatalf("promoted WAL did not continue the LSN space: last=%d want >= %d", w.LastLSN(), first)
	}
	stats, err := rcl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Role != "coordinator" || !stats.Promoted {
		t.Fatalf("promoted stats wrong: role=%q promoted=%v", stats.Role, stats.Promoted)
	}
	if err := replicaSvc.Promote(); !errors.Is(err, errNotReplica) {
		t.Fatalf("second promote: %v", err)
	}
}

// TestPromoteAdminGate: /v1/promote requires the configured token and
// is disabled outright without one.
func TestPromoteAdminGate(t *testing.T) {
	o := testOptions()
	primary, _, _ := newTestServer(t, Config{Options: o, WALDir: t.TempDir(), WALFsync: "off"})
	addr := startStream(t, primary)
	_, rts := newReplica(t, o, addr, func(c *Config) { c.AdminToken = "s3cret" })

	post := func(token string) int {
		req, _ := http.NewRequest(http.MethodPost, rts.URL+"/v1/promote", nil)
		if token != "" {
			req.Header.Set("X-Admin-Token", token)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := post(""); got != http.StatusForbidden {
		t.Fatalf("tokenless promote: %d", got)
	}
	if got := post("wrong"); got != http.StatusForbidden {
		t.Fatalf("bad-token promote: %d", got)
	}
	if got := post("s3cret"); got != http.StatusOK {
		t.Fatalf("promote: %d", got)
	}
	if got := post("s3cret"); got != http.StatusConflict {
		t.Fatalf("second promote: %d", got)
	}

	// No token configured: the endpoint is disabled, not open.
	_, rts2 := newReplica(t, o, addr, nil)
	req, _ := http.NewRequest(http.MethodPost, rts2.URL+"/v1/promote", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("unconfigured promote endpoint: %d", resp.StatusCode)
	}
}

// TestReplicaAutoPromoteOnPrimaryLoss: with PrimaryTimeout configured,
// total primary silence promotes the replica by itself and writes start
// flowing.
func TestReplicaAutoPromoteOnPrimaryLoss(t *testing.T) {
	o := testOptions()
	primary, _, pcl := newTestServer(t, Config{
		Options: o, WALDir: t.TempDir(), WALFsync: "always",
		HeartbeatInterval: 20 * time.Millisecond,
	})
	addr := startStream(t, primary)
	proxy := newProxy(t, addr)
	replicaSvc, rts := newReplica(t, o, proxy.Addr(), func(c *Config) {
		c.PrimaryTimeout = 250 * time.Millisecond
	})

	ctx := context.Background()
	if err := pcl.AddBatch(ctx, testStream(1_000, 5)); err != nil {
		t.Fatal(err)
	}
	last := primary.walRef().LastLSN()
	waitUntil(t, 10*time.Second, "replica catch-up", func() bool {
		return replicaSvc.appliedLSN.Load() >= last
	})

	proxy.Close()
	waitUntil(t, 10*time.Second, "auto-promotion", func() bool {
		return !replicaSvc.replicaMode.Load()
	})
	rcl := client.New(rts.URL)
	if err := rcl.AddBatch(ctx, testStream(100, 6)); err != nil {
		t.Fatalf("auto-promoted replica refused a write: %v", err)
	}
	stats, err := rcl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Role != "coordinator" || !stats.Promoted {
		t.Fatalf("auto-promoted stats wrong: role=%q promoted=%v", stats.Role, stats.Promoted)
	}
}
