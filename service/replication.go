package service

import (
	"bytes"
	"crypto/subtle"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	correlated "github.com/streamagg/correlated"
	"github.com/streamagg/correlated/internal/replica"
	"github.com/streamagg/correlated/internal/tupleio"
	"github.com/streamagg/correlated/internal/wal"
)

// Replication: WAL-shipped warm standby with failover.
//
// The primary serves its log over the stream listener: a connection
// whose hello names StreamFormatReplica sends one start request (the
// LSN the follower already covers) and then only reads — the primary
// runs wal.Follow from that position and ships every durable record as
// a frame (seq = LSN), interleaved with heartbeats carrying its
// followable frontier. Only fsynced records are shipped (the WAL's
// durable frontier), so a replica can never hold state the primary's
// own crash recovery would lose — which is what keeps the failover
// byte-identity guarantee honest. A follower whose position has been
// pruned by a checkpoint is re-seeded with a freshly built snapshot
// frame and follows on from its covered LSN, so the primary carries no
// unbounded retention obligation.
//
// The replica (Config.PrimaryAddr) applies each shipped record under
// the driver lock through the exact applyRecord switch its own startup
// replay uses — same entry points, same per-record flush discipline —
// so its state is always "the primary replayed to LSN N". It serves
// reads (/v1/query, /v1/stats, /v1/summary) from the same epoch caches
// as a primary and rejects writes with 503 (AckReadOnly on the
// stream). Promotion — POST /v1/promote, or automatic on primary
// silence (Config.PrimaryTimeout) — detaches the follower, seals the
// applied LSN, folds back any push round the primary had in flight
// (exactly as crash replay's tail does), opens the replica's own WAL
// continuing the primary's LSN space, and starts accepting writes.

var (
	// errReadOnlyReplica rejects writes on a replica; the message is
	// wire-visible and the Go client's IsReadOnly matches the 503
	// status + this text.
	errReadOnlyReplica = errors.New("read-only replica: writes go to the primary")
	// errNotReplica rejects promotion of a server that is not (or is no
	// longer) a replica.
	errNotReplica = errors.New("service: not a replica")
)

// replayState is the cross-record scratch one log consumer carries —
// the startup replayer (service/wal.go) and a replica's live apply
// loop each own one. startup toggles the checkpoint staleness witness
// (live replicas ignore the primary's checkpoint markers) and the
// epoch bumps (startup replay runs before any reader exists; live
// apply must invalidate query caches as it goes).
type replayState struct {
	inFlight []byte             // image of an open push round, nil when none
	tuples   []correlated.Tuple // decode scratch
	touched  []*tenant          // keyed-group first-touch scratch
	covered  uint64             // snapshot baseline (startup staleness check)
	startup  bool
	fallback bool // restore fell back to an older retention slot
}

func newReplayState(covered uint64, startup bool) *replayState {
	return &replayState{
		tuples:  make([]correlated.Tuple, 0, 4096),
		covered: covered,
		startup: startup,
	}
}

// noteTouch records that a record mutated t. Startup replay needs
// nothing (no concurrent readers yet); live replica apply bumps the
// epoch so the next query rebuilds its cached merge.
func (st *replayState) noteTouch(t *tenant) {
	if !st.startup {
		t.epoch.Add(1)
		t.touch()
	}
}

// replayTenantEngine resolves a replayed tenant key to its live
// engine, creating (cap-free) or lazily restoring the tenant as
// needed. Startup replay calls it single-threaded; live apply calls it
// under s.mu, which ensureEngineLocked requires anyway.
func (s *Server) replayTenantEngine(name []byte) (*tenant, Engine, error) {
	t, err := s.getOrCreateTenant(name, true)
	if err != nil {
		return nil, nil, err
	}
	eng, err := s.ensureEngineLocked(t)
	if err != nil {
		return nil, nil, err
	}
	return t, eng, nil
}

// applyRecord applies one WAL record through the same engine entry
// points the live handlers use — the one grammar both crash replay and
// a replica's live apply speak, which is what makes a promoted
// replica's state byte-identical to a crash-free primary replayed to
// the same LSN. counted reports whether the record carried state (a
// checkpoint marker does not). The per-record flush discipline mirrors
// the live commit exactly: one drain per touched tenant per group, in
// first-touch order, so worker batch boundaries stay a pure function
// of the log.
func (s *Server) applyRecord(lsn uint64, typ wal.RecordType, payload []byte, st *replayState) (counted bool, err error) {
	switch typ {
	case wal.RecordIngest:
		if st.tuples, err = tupleio.DecodeCounted(st.tuples, payload); err != nil {
			return false, fmt.Errorf("service: wal replay: record %d: %w", lsn, err)
		}
		if err := s.def.eng.AddBatch(st.tuples); err != nil {
			return false, fmt.Errorf("service: wal replay: record %d: %w", lsn, err)
		}
		// Drain per record, mirroring the live commit of a group of
		// one: worker batch boundaries replay exactly as they ran.
		if err := s.def.eng.Flush(); err != nil {
			return false, fmt.Errorf("service: wal replay: record %d: %w", lsn, err)
		}
		st.noteTouch(s.def)
	case wal.RecordIngestGroup:
		// One commit group: apply every member batch in commit order,
		// then flush once — the same single drain the live group paid.
		n, sz := binary.Uvarint(payload)
		if sz <= 0 {
			return false, fmt.Errorf("service: wal replay: record %d: bad group header", lsn)
		}
		rest := payload[sz:]
		for i := uint64(0); i < n; i++ {
			if st.tuples, rest, err = tupleio.DecodeCountedPrefix(st.tuples, rest); err != nil {
				return false, fmt.Errorf("service: wal replay: record %d member %d: %w", lsn, i, err)
			}
			if err := s.def.eng.AddBatch(st.tuples); err != nil {
				return false, fmt.Errorf("service: wal replay: record %d member %d: %w", lsn, i, err)
			}
		}
		if len(rest) != 0 {
			return false, fmt.Errorf("service: wal replay: record %d: %d trailing bytes after %d members", lsn, len(rest), n)
		}
		if err := s.def.eng.Flush(); err != nil {
			return false, fmt.Errorf("service: wal replay: record %d: %w", lsn, err)
		}
		st.noteTouch(s.def)
	case wal.RecordKeyedIngestGroup:
		// A commit group that touched keyed tenants: apply every member
		// to its tenant in commit order, then flush each touched tenant
		// once, in first-touch order — exactly the sequence the live
		// commitGroup ran.
		n, sz := binary.Uvarint(payload)
		if sz <= 0 {
			return false, fmt.Errorf("service: wal replay: record %d: bad group header", lsn)
		}
		rest := payload[sz:]
		st.touched = st.touched[:0]
		for i := uint64(0); i < n; i++ {
			var name, batchRest []byte
			name, st.tuples, batchRest, err = tupleio.DecodeKeyedPrefix(st.tuples, rest)
			if err != nil {
				return false, fmt.Errorf("service: wal replay: record %d member %d: %w", lsn, i, err)
			}
			rest = batchRest
			t, eng, err := s.replayTenantEngine(name)
			if err != nil {
				return false, fmt.Errorf("service: wal replay: record %d member %d: %w", lsn, i, err)
			}
			if err := eng.AddBatch(st.tuples); err != nil {
				return false, fmt.Errorf("service: wal replay: record %d member %d: %w", lsn, i, err)
			}
			if !t.inGroup {
				t.inGroup = true
				st.touched = append(st.touched, t)
			}
		}
		if len(rest) != 0 {
			return false, fmt.Errorf("service: wal replay: record %d: %d trailing bytes after %d members", lsn, len(rest), n)
		}
		for _, t := range st.touched {
			t.inGroup = false
			if err := t.eng.Flush(); err != nil {
				return false, fmt.Errorf("service: wal replay: record %d tenant %q: %w", lsn, t.name, err)
			}
			st.noteTouch(t)
		}
	case wal.RecordPush:
		if err := s.def.eng.MergeMarshaled(payload); err != nil {
			return false, fmt.Errorf("service: wal replay: record %d: %w", lsn, err)
		}
		st.noteTouch(s.def)
	case wal.RecordKeyedPush:
		name, image, err := tupleio.DecodeTenantPrefix(payload)
		if err != nil {
			return false, fmt.Errorf("service: wal replay: record %d: %w", lsn, err)
		}
		t, eng, err := s.replayTenantEngine(name)
		if err != nil {
			return false, fmt.Errorf("service: wal replay: record %d: %w", lsn, err)
		}
		if err := eng.MergeMarshaled(image); err != nil {
			return false, fmt.Errorf("service: wal replay: record %d: %w", lsn, err)
		}
		st.noteTouch(t)
	case wal.RecordReset:
		if err := s.def.eng.Reset(); err != nil {
			return false, fmt.Errorf("service: wal replay: record %d: %w", lsn, err)
		}
		st.inFlight = append(st.inFlight[:0], payload...)
		st.noteTouch(s.def)
	case wal.RecordPushAck:
		st.inFlight = nil
	case wal.RecordFoldback:
		if err := s.def.eng.MergeMarshaled(payload); err != nil {
			return false, fmt.Errorf("service: wal replay: record %d: %w", lsn, err)
		}
		st.inFlight = nil
		st.noteTouch(s.def)
	case wal.RecordCheckpoint:
		// Not state, but — on startup replay — a consistency witness:
		// the marker says a snapshot covering LSN c was durably
		// written. If the snapshot we restored claims less, we are
		// about to re-apply records the log was already pruned against.
		// A live replica ignores the primary's markers: its own
		// coverage is its applied LSN, not the primary's prune horizon.
		c, n := binary.Uvarint(payload)
		if n <= 0 {
			return false, fmt.Errorf("service: wal replay: record %d: bad checkpoint marker", lsn)
		}
		if st.startup && c > st.covered && !st.fallback {
			// A deliberate retention fallback restores an older snapshot
			// on purpose; there the replay-gap check in replayWAL (first
			// record must be covered+1) is the correctness guard instead.
			return false, fmt.Errorf("service: wal replay: log has a checkpoint covering LSN %d but the restored snapshot covers only %d — snapshot at %q is stale or missing; refusing to double-apply (restore the matching snapshot, or move the WAL dir aside to start fresh)",
				c, st.covered, s.cfg.SnapshotPath)
		}
		return false, nil
	case wal.RecordProbe:
		// A recovery probe: the record exists only to prove the log can
		// append and fsync again. It carries no state — skip it on
		// replay, and a live replica skips the shipped copy the same way.
		return false, nil
	default:
		return false, fmt.Errorf("service: wal replay: record %d has unknown type %d", lsn, typ)
	}
	return true, nil
}

// ---------------------------------------------------------------------
// Primary side: serving replica connections on the stream listener.

// replicaMaxFrame is the frame cap advertised to replication followers.
// Snapshot frames carry a whole state image, so the cap is the WAL's
// own record bound rather than the ingest body limit.
const replicaMaxFrame uint32 = 1 << 30

// replicaWriteTimeout bounds each frame write so a stalled follower
// drops its connection (and redials) instead of pinning the serving
// goroutine; the follower resumes positionally.
const replicaWriteTimeout = 30 * time.Second

// defaultHeartbeatInterval is the primary→replica heartbeat cadence.
const defaultHeartbeatInterval = time.Second

func (s *Server) heartbeatInterval() time.Duration {
	if s.cfg.HeartbeatInterval > 0 {
		return s.cfg.HeartbeatInterval
	}
	return defaultHeartbeatInterval
}

// serveReplicaConn runs one replication follower connection: read the
// start request, then pump wal.Follow output (and heartbeats) at it
// until the connection dies or the server drains. The caller
// (serveStreamConn) has already completed the hello and owns the
// conn's registration, WaitGroup slot, and final Close.
func (s *Server) serveReplicaConn(c net.Conn, w *wal.WAL) {
	c.SetReadDeadline(time.Now().Add(streamHelloTimeout))
	var req [tupleio.ReplStartSize]byte
	if _, err := io.ReadFull(c, req[:]); err != nil {
		s.metrics.streamFrameErrors.Inc()
		return
	}
	// covered is the highest LSN the follower already holds; Follow's
	// from-argument speaks the same exclusive convention, delivering
	// covered+1 onward.
	covered, err := tupleio.ParseReplStart(req[:])
	if err != nil {
		s.metrics.streamFrameErrors.Inc()
		return
	}
	c.SetReadDeadline(time.Time{})

	connID := newRequestID()
	s.logf("replica: conn %s from %s following from LSN %d", connID, c.RemoteAddr(), covered+1)
	s.metrics.replicaConns.Add(1)
	defer s.metrics.replicaConns.Add(-1)

	// stop fires when the connection dies (the watcher read below — the
	// follower sends nothing after its start request — errors, including
	// the read deadline closeStreams sets at shutdown) or the server
	// drains. Closing the conn on s.done also unblocks an in-flight
	// frame write, so shutdown never waits out a stalled follower.
	stop := make(chan struct{})
	var stopOnce sync.Once
	halt := func() { stopOnce.Do(func() { close(stop) }) }
	go func() {
		io.Copy(io.Discard, c)
		halt()
	}()
	go func() {
		select {
		case <-s.done:
			halt()
			c.Close()
		case <-stop:
		}
	}()

	// One write mutex serializes record frames (the Follow callback)
	// with the heartbeat ticker; each frame is one conn write.
	var wmu sync.Mutex
	frameBuf := make([]byte, 0, 64<<10)
	writeFrame := func(seq uint64, appendPayload func([]byte) []byte) error {
		wmu.Lock()
		defer wmu.Unlock()
		b := tupleio.AppendFrameHeader(frameBuf[:0], seq, 0)
		b = appendPayload(b)
		binary.LittleEndian.PutUint32(b[0:4], uint32(len(b)-tupleio.FrameHeaderSize))
		if cap(b) <= maxPooledBuffer {
			frameBuf = b
		}
		c.SetWriteDeadline(time.Now().Add(replicaWriteTimeout))
		_, err := c.Write(b)
		return err
	}

	go func() {
		tick := time.NewTicker(s.heartbeatInterval())
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				if err := writeFrame(w.FollowableLSN(), tupleio.AppendReplHeartbeat); err != nil {
					halt()
					return
				}
				s.metrics.replicaHeartbeatsSent.Inc()
			case <-stop:
				return
			}
		}
	}()

	for {
		err := w.Follow(covered, stop, func(lsn uint64, typ wal.RecordType, payload []byte) error {
			if err := writeFrame(lsn, func(b []byte) []byte {
				return tupleio.AppendReplRecord(b, uint8(typ), payload)
			}); err != nil {
				return err
			}
			s.metrics.replicaRecordsSent.Inc()
			covered = lsn
			return nil
		})
		switch {
		case err == nil:
			return // stopped: conn gone or server draining
		case errors.Is(err, wal.ErrTruncated):
			// The follower's position is behind the prune horizon:
			// re-seed it with a freshly built snapshot and follow on
			// from the LSN that snapshot covers.
			seedCovered, file, serr := s.replicaSeedSnapshot(w)
			if serr != nil {
				s.logf("replica: conn %s: build seed snapshot: %v", connID, serr)
				return
			}
			if werr := writeFrame(seedCovered, func(b []byte) []byte {
				return tupleio.AppendReplSnapshot(b, file)
			}); werr != nil {
				return
			}
			s.metrics.replicaSnapshotsSent.Inc()
			s.logf("replica: conn %s re-seeded with snapshot covering LSN %d", connID, seedCovered)
			covered = seedCovered
		case errors.Is(err, wal.ErrClosed):
			return
		default:
			s.logf("replica: conn %s: %v", connID, err)
			return
		}
	}
}

// replicaSeedSnapshot builds an in-memory snapshot file for a follower
// that fell behind the prune horizon. The transfer lock keeps it off a
// push round's transient reset state, and the explicit Sync afterwards
// guarantees covered never exceeds the durable frontier — a re-seeded
// replica must not hold state the primary's own crash recovery could
// lose.
func (s *Server) replicaSeedSnapshot(w *wal.WAL) (covered uint64, file []byte, err error) {
	s.xferMu.Lock()
	covered, file, _, err = s.buildSnapshot()
	s.xferMu.Unlock()
	if err != nil {
		return 0, nil, err
	}
	if err := w.Sync(); err != nil {
		return 0, nil, err
	}
	return covered, file, nil
}

// ---------------------------------------------------------------------
// Replica side: the follower loop, live apply, and promotion.

// startFollower wires the replication follower into the server. Called
// from New after recovery; appliedLSN already holds the restored
// snapshot's covered LSN.
func (s *Server) startFollower() {
	s.caughtUpAt.Store(time.Now().UnixNano())
	s.replState = newReplayState(0, false)
	s.follower = replica.Start(replica.Config{
		Addr:             s.cfg.PrimaryAddr,
		StartLSN:         func() uint64 { return s.appliedLSN.Load() },
		ApplyRecord:      s.replicaApply,
		InstallSnapshot:  s.replicaInstallSnapshot,
		OnPrimaryLSN:     s.observePrimaryLSN,
		HeartbeatTimeout: s.cfg.PrimaryTimeout,
		OnPrimaryLoss: func() {
			// Fired from inside the follower goroutine; promote on a
			// fresh one so Promote's wait-for-follower-exit can't
			// deadlock against the loss path itself.
			go func() {
				s.logf("replica: primary %s lost; auto-promoting", s.cfg.PrimaryAddr)
				if err := s.Promote(); err != nil {
					s.logf("replica: auto-promote: %v", err)
				}
			}()
		},
		MaxFrame: replicaMaxFrame,
		Logf:     s.logger.Printf,
	})
}

// replicaApply applies one shipped WAL record under the driver lock —
// the same critical section a primary's commit group owns — and
// advances the applied LSN inside it, so a concurrent snapshot always
// records a covered LSN consistent with the marshaled state.
func (s *Server) replicaApply(lsn uint64, typ uint8, payload []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.applyRecord(lsn, wal.RecordType(typ), payload, s.replState); err != nil {
		return err
	}
	s.appliedLSN.Store(lsn)
	s.metrics.replicaRecordsApplied.Inc()
	if lsn >= s.primaryLSN.Load() {
		s.caughtUpAt.Store(time.Now().UnixNano())
	}
	return nil
}

// replicaInstallSnapshot re-seeds the whole registry from a primary
// snapshot frame: every tenant in the image is (re)loaded, every
// local tenant absent from it is reset — afterwards the state is
// exactly "the primary at LSN covered".
func (s *Server) replicaInstallSnapshot(covered uint64, data []byte) error {
	var images []tenantImage
	if bytes.HasPrefix(data, snapshotMagicV2) {
		_, imgs, err := decodeSnapshotFileV2(data)
		if err != nil {
			return err
		}
		images = imgs
	} else {
		_, engine, err := decodeSnapshotFile(data)
		if err != nil {
			return err
		}
		images = []tenantImage{{name: "", image: engine}}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	inImage := make(map[string]bool, len(images))
	for _, ti := range images {
		inImage[ti.name] = true
	}
	for _, t := range s.tenantList() {
		if inImage[t.name] {
			continue
		}
		// Present locally, absent from the primary's image: empty it.
		t.pending = nil
		if t.eng != nil {
			if err := t.eng.Reset(); err != nil {
				return fmt.Errorf("service: install snapshot: reset tenant %q: %w", t.name, err)
			}
		}
		t.epoch.Add(1)
	}
	for _, ti := range images {
		t, err := s.getOrCreateTenant([]byte(ti.name), true)
		if err != nil {
			return fmt.Errorf("service: install snapshot: tenant %q: %w", ti.name, err)
		}
		if t.eng != nil {
			if err := t.eng.UnmarshalBinary(ti.image); err != nil {
				return fmt.Errorf("service: install snapshot: tenant %q: %w", ti.name, err)
			}
		} else {
			// Spilled: the image becomes the pending state, exactly as
			// a startup restore would park it.
			t.pending = bytes.Clone(ti.image)
			t.space.Store(int64(len(ti.image)))
		}
		t.epoch.Add(1)
		t.touch()
	}
	if s.replState != nil {
		s.replState.inFlight = nil // superseded by the image's state
	}
	s.appliedLSN.Store(covered)
	s.metrics.replicaSnapshotsInstalled.Inc()
	if covered >= s.primaryLSN.Load() {
		s.caughtUpAt.Store(time.Now().UnixNano())
	}
	s.logf("replica: installed snapshot covering LSN %d (%d tenants)", covered, len(images))
	return nil
}

// observePrimaryLSN tracks the primary's frontier (monotonically — a
// reconnect may replay an older heartbeat) for the lag gauges.
func (s *Server) observePrimaryLSN(lsn uint64) {
	for {
		cur := s.primaryLSN.Load()
		if lsn <= cur || s.primaryLSN.CompareAndSwap(cur, lsn) {
			break
		}
	}
	if s.appliedLSN.Load() >= s.primaryLSN.Load() {
		s.caughtUpAt.Store(time.Now().UnixNano())
	}
}

// replicationLag reports how far behind the primary this replica is:
// the LSN delta and, when behind, how long since it was last caught
// up. Both are 0 on a caught-up (or promoted) server.
func (s *Server) replicationLag() (records uint64, seconds float64) {
	applied, primary := s.appliedLSN.Load(), s.primaryLSN.Load()
	if primary > applied {
		records = primary - applied
		seconds = time.Since(time.Unix(0, s.caughtUpAt.Load())).Seconds()
	}
	return records, seconds
}

// roleNow is the live role: cfg.role() except that a promoted
// ex-replica serves as a coordinator.
func (s *Server) roleNow() string {
	if s.cfg.PrimaryAddr == "" {
		return s.cfg.role()
	}
	if s.replicaMode.Load() {
		return "replica"
	}
	return "coordinator"
}

// Promote turns a replica into a primary: detach from the old primary,
// seal the applied LSN, fold back any push round the old primary had
// open (the same tail fold-back crash replay performs), open this
// node's own WAL continuing the old primary's LSN space, and start
// accepting writes. Idempotent-by-refusal: a second call returns
// errNotReplica.
func (s *Server) Promote() error {
	s.promoteMu.Lock()
	defer s.promoteMu.Unlock()
	if s.closing.Load() {
		return errShuttingDown
	}
	if !s.replicaMode.Load() {
		return errNotReplica
	}
	// Detach first: no record may land after the seal.
	if s.follower != nil {
		s.follower.Stop()
	}
	sealed := s.appliedLSN.Load()
	s.mu.Lock()
	if st := s.replState; st != nil && len(st.inFlight) > 0 {
		if err := s.def.eng.MergeMarshaled(st.inFlight); err != nil {
			s.mu.Unlock()
			return fmt.Errorf("service: promote: fold back in-flight push image: %w", err)
		}
		st.inFlight = nil
		s.def.epoch.Add(1)
		s.logf("promote: primary's push round was in flight; image folded back")
	}
	s.mu.Unlock()
	if s.cfg.WALDir != "" {
		if err := s.openWALAt(sealed + 1); err != nil {
			return err
		}
	}
	s.replicaMode.Store(false)
	s.metrics.replicaPromotions.Inc()
	s.logf("promoted to primary at LSN %d (wal=%q)", sealed, s.cfg.WALDir)
	// Persist the sealed state immediately (when configured): the new
	// log is empty, so the snapshot's covered LSN is exactly the seal.
	if err := s.Snapshot(); err != nil {
		s.logf("post-promote snapshot: %v", err)
	}
	return nil
}

// openWALAt opens a brand-new WAL whose first record continues the
// sealed LSN space. It refuses a directory that already holds
// segments: mixing an old log's LSNs with the primary's would corrupt
// recovery.
func (s *Server) openWALAt(firstLSN uint64) error {
	if entries, err := os.ReadDir(s.cfg.WALDir); err == nil {
		for _, e := range entries {
			if strings.HasPrefix(e.Name(), "wal-") && strings.HasSuffix(e.Name(), ".seg") {
				return fmt.Errorf("service: promote: wal dir %q already holds segments; move them aside first", s.cfg.WALDir)
			}
		}
	}
	policy, err := wal.ParseSyncPolicy(s.cfg.WALFsync)
	if err != nil {
		return fmt.Errorf("service: %w", err)
	}
	w, err := wal.Open(s.cfg.WALDir, wal.Options{
		SegmentBytes: s.cfg.WALSegmentBytes,
		Sync:         policy,
		SyncEvery:    s.cfg.WALFsyncInterval,
		FirstLSN:     firstLSN,
		FS:           s.fs,
		OnFsync:      func(d time.Duration) { s.metrics.walFsync.Observe(d.Seconds()) },
		OnSyncError: func(err error) {
			s.logf("wal: background fsync: %v", err)
			s.noteBgSyncError(err)
		},
	})
	if err != nil {
		return fmt.Errorf("service: wal: %w", err)
	}
	// Publish under the driver lock: stats and metrics handlers read
	// s.wal through walRef, and the committer sees it only for jobs
	// enqueued after replicaMode clears.
	s.mu.Lock()
	s.wal = w
	s.walSyncAlways = policy == wal.SyncAlways
	s.mu.Unlock()
	return nil
}

// walRef reads the WAL pointer under the driver lock — promotion can
// install one at runtime, so concurrent readers (stats, metrics, new
// replica conns) must not read the field bare.
func (s *Server) walRef() *wal.WAL {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.wal
}

// handlePromote is POST /v1/promote: admin-gated manual failover. With
// no AdminToken configured the endpoint is disabled outright (403) —
// an unauthenticated promote would let anyone split-brain the pair.
func (s *Server) handlePromote(w http.ResponseWriter, r *http.Request) {
	if s.cfg.AdminToken == "" {
		s.httpError(w, http.StatusForbidden, errors.New("promotion disabled: no admin token configured"))
		return
	}
	if subtle.ConstantTimeCompare([]byte(r.Header.Get("X-Admin-Token")), []byte(s.cfg.AdminToken)) != 1 {
		s.httpError(w, http.StatusForbidden, errors.New("bad admin token"))
		return
	}
	if err := s.Promote(); err != nil {
		status := http.StatusInternalServerError
		switch {
		case errors.Is(err, errNotReplica):
			status = http.StatusConflict
		case errors.Is(err, errShuttingDown):
			status = http.StatusServiceUnavailable
		}
		s.httpError(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"promoted": true, "lsn": s.appliedLSN.Load()})
}
