package service

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	correlated "github.com/streamagg/correlated"
	"github.com/streamagg/correlated/client"
)

// The tests here pin the multi-tenant namespace layer: N keyed
// summaries behind one daemon must stay independent (per-tenant results
// float-exact against per-tenant serial oracles, a bad push to one
// tenant never touching another), crash-exact (per-tenant recovered
// summary bytes identical to a crash-free serial run of that tenant's
// acknowledged traffic), and governable (count/memory caps with typed
// rejections, idle spill that round-trips through the marshaled image
// bit-exactly).

// tenantKey names the i-th test tenant.
func tenantKey(i int) string { return fmt.Sprintf("t%03d", i) }

// crashAll simulates kill -9 for a multi-tenant server: drop the
// listener and kill every live tenant engine — no graceful Close, no
// final snapshot, no WAL close.
func crashAll(ts *httptest.Server, svc *Server) {
	ts.Close()
	for _, tn := range svc.tenantList() {
		svc.mu.Lock()
		eng := tn.eng
		svc.mu.Unlock()
		if eng != nil {
			eng.Close()
		}
	}
}

// tenantSummary fetches one tenant's /v1/summary bytes.
func tenantSummary(t *testing.T, url, name string) []byte {
	t.Helper()
	img, err := client.New(url, client.WithTenant(name)).Summary(context.Background())
	if err != nil {
		t.Fatalf("tenant %q summary: %v", name, err)
	}
	return img
}

// TestMultiTenantCrashRecoveryExact is the tentpole's acceptance
// contract: eight tenants ingest concurrently — half over HTTP, half
// over the keyed streaming transport — with default-tenant traffic and
// a keyed push mixed in, a snapshot lands mid-run (so recovery is
// restore-v2-then-replay-suffix, not pure replay), the server is killed
// without warning, and the restart rebuilds every tenant's summary
// byte-identical both to the pre-crash state and to a crash-free oracle
// server that ran each tenant's acknowledged operations serially.
//
// Per-tenant ingest is sequential (each request/frame awaited before
// the next — stream clients run a window of 1) while tenants proceed
// concurrently, so each commit group carries at most one batch per
// tenant and the per-tenant apply/flush sequence is exactly the serial
// oracle's: worker batch boundaries stay a pure function of the log,
// per tenant.
func TestMultiTenantCrashRecoveryExact(t *testing.T) {
	const (
		tenantsN = 8
		chunk    = 250
	)
	o := testOptions()
	cfg := walConfig(t, 2)
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	addr := startStream(t, svc)
	ctx := context.Background()

	// tenantPhaseStream is the tenant's acknowledged traffic in phase p,
	// deterministic so the oracle regenerates it.
	tenantPhaseStream := func(i, p int) []correlated.Tuple {
		return testStream(700+i*37, uint64(1_000*p+i))
	}
	defaultPhaseStream := func(p int) []correlated.Tuple {
		return testStream(900, uint64(5_000+p))
	}

	// ingestPhase drives one phase: all tenants (plus the default) in
	// parallel, each sequential within itself.
	ingestPhase := func(p int) {
		var wg sync.WaitGroup
		errs := make([]error, tenantsN+1)
		for i := 0; i < tenantsN; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				stream := tenantPhaseStream(i, p)
				if i%2 == 0 {
					cl := client.New(ts.URL, client.WithChunkSize(chunk), client.WithTenant(tenantKey(i)))
					errs[i] = cl.AddBatch(ctx, stream)
					return
				}
				st, err := client.DialStream(ctx, addr,
					client.WithStreamTenant(tenantKey(i)), client.WithStreamWindow(1))
				if err != nil {
					errs[i] = err
					return
				}
				for off := 0; off < len(stream); off += chunk {
					end := min(off+chunk, len(stream))
					if err := st.Send(stream[off:end]); err != nil {
						errs[i] = err
						st.Close()
						return
					}
				}
				errs[i] = st.Close()
			}(i)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl := client.New(ts.URL, client.WithChunkSize(chunk))
			errs[tenantsN] = cl.AddBatch(ctx, defaultPhaseStream(p))
		}()
		wg.Wait()
		for i, e := range errs {
			if e != nil {
				t.Fatalf("ingester %d phase %d: %v", i, p, e)
			}
		}
	}

	ingestPhase(1)
	if err := svc.Snapshot(); err != nil { // multi-tenant (v2) snapshot
		t.Fatal(err)
	}
	ingestPhase(2)

	// A keyed push into one tenant: the image rides a RecordKeyedPush.
	site, err := correlated.NewF2Summary(o)
	if err != nil {
		t.Fatal(err)
	}
	pushStream := testStream(500, 9_001)
	if err := site.AddBatch(append([]correlated.Tuple(nil), pushStream...)); err != nil {
		t.Fatal(err)
	}
	img, err := site.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	pushTenant := tenantKey(2)
	if err := client.New(ts.URL, client.WithTenant(pushTenant)).Push(ctx, img); err != nil {
		t.Fatal(err)
	}

	// Pre-crash oracle: every request above was acknowledged, so these
	// bytes are exactly what recovery must rebuild.
	pre := make(map[string][]byte, tenantsN+1)
	for i := 0; i < tenantsN; i++ {
		pre[tenantKey(i)] = tenantSummary(t, ts.URL, tenantKey(i))
	}
	pre[""] = tenantSummary(t, ts.URL, "")
	crashAll(ts, svc)

	svc2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(svc2.Handler())
	defer func() {
		ts2.Close()
		svc2.Close()
	}()
	if svc2.walReplayed == 0 {
		t.Fatal("restart replayed no WAL records")
	}
	for name, want := range pre {
		got := tenantSummary(t, ts2.URL, name)
		if !bytes.Equal(got, want) {
			t.Fatalf("tenant %q: recovered summary differs from pre-crash state (%d vs %d bytes)",
				name, len(got), len(want))
		}
	}
	st, err := client.New(ts2.URL).Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Tenants != tenantsN+1 {
		t.Fatalf("recovered %d tenants, want %d", st.Tenants, tenantsN+1)
	}

	// Crash-free oracle server: each tenant's acknowledged operations run
	// serially, alone, with the same chunk boundaries — its summary must
	// match the recovered multi-tenant state byte for byte.
	oracleCfg := walConfig(t, 2)
	oracle, err := New(oracleCfg)
	if err != nil {
		t.Fatal(err)
	}
	ots := httptest.NewServer(oracle.Handler())
	defer func() {
		ots.Close()
		oracle.Close()
	}()
	for i := 0; i < tenantsN; i++ {
		cl := client.New(ots.URL, client.WithChunkSize(chunk), client.WithTenant(tenantKey(i)))
		for p := 1; p <= 2; p++ {
			if err := cl.AddBatch(ctx, tenantPhaseStream(i, p)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := client.New(ots.URL, client.WithTenant(pushTenant)).Push(ctx, img); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < tenantsN; i++ {
		want := tenantSummary(t, ots.URL, tenantKey(i))
		got := tenantSummary(t, ts2.URL, tenantKey(i))
		if !bytes.Equal(got, want) {
			t.Fatalf("tenant %q: recovered summary differs from serial oracle (%d vs %d bytes)",
				tenantKey(i), len(got), len(want))
		}
	}
}

// TestTenantIsolation is the namespace-independence property test:
// chunks from K tenants interleave round-robin through the shared
// pipeline, and every tenant must answer float-exactly like a serial
// offline summary of its own stream alone; a typed-incompatible push
// rejected on tenant A leaves B byte-untouched.
func TestTenantIsolation(t *testing.T) {
	const tenantsN = 5
	o := testOptions()
	_, ts, _ := newTestServer(t, Config{Options: o, Shards: 2, BatchSize: 64})
	ctx := context.Background()

	streams := make([][]correlated.Tuple, tenantsN)
	clients := make([]*client.Client, tenantsN)
	for i := range streams {
		streams[i] = testStream(2_000+i*111, uint64(400+i))
		clients[i] = client.New(ts.URL, client.WithTenant(tenantKey(i)))
	}
	const chunk = 128
	for off := 0; ; off += chunk {
		advanced := false
		for i, s := range streams {
			if off >= len(s) {
				continue
			}
			advanced = true
			end := min(off+chunk, len(s))
			if err := clients[i].AddBatch(ctx, s[off:end]); err != nil {
				t.Fatalf("tenant %d chunk at %d: %v", i, off, err)
			}
		}
		if !advanced {
			break
		}
	}

	check := func(stage string) {
		for i, s := range streams {
			offline, err := correlated.NewF2Summary(o)
			if err != nil {
				t.Fatal(err)
			}
			if err := offline.AddBatch(append([]correlated.Tuple(nil), s...)); err != nil {
				t.Fatal(err)
			}
			for _, c := range []uint64{0, 77, distinctY, 1 << 15} {
				want, err1 := offline.QueryLE(c)
				got, err2 := clients[i].QueryLE(ctx, c)
				if err1 != nil || err2 != nil {
					t.Fatalf("%s tenant %d c=%d: %v %v", stage, i, c, err1, err2)
				}
				if got != want {
					t.Fatalf("%s tenant %d LE c=%d: service %v offline %v", stage, i, c, got, want)
				}
			}
		}
	}
	check("interleaved")

	// A push built from different Options must be rejected 409 on the
	// tenant it targets and must not perturb any other tenant's bytes.
	preB := tenantSummary(t, ts.URL, tenantKey(1))
	bad := o
	bad.Seed = o.Seed + 1
	alien, err := correlated.NewF2Summary(bad)
	if err != nil {
		t.Fatal(err)
	}
	if err := alien.AddBatch(testStream(100, 3)); err != nil {
		t.Fatal(err)
	}
	img, err := alien.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	err = clients[0].Push(ctx, img)
	if !client.IsIncompatible(err) {
		t.Fatalf("incompatible push: %v", err)
	}
	if got := tenantSummary(t, ts.URL, tenantKey(1)); !bytes.Equal(got, preB) {
		t.Fatal("rejected push on tenant 0 changed tenant 1's bytes")
	}
	check("after rejected push")

	// Read paths never create tenants: an unknown key is 404.
	var ae *client.APIError
	if _, err := client.New(ts.URL, client.WithTenant("never-seen")).QueryLE(ctx, 10); !asAPIError(err, &ae) || ae.Status != http.StatusNotFound {
		t.Fatalf("unknown-tenant query: %v", err)
	}
	// Hostile keys are rejected before touching the registry.
	resp, err := http.Post(ts.URL+"/v1/ingest?tenant="+strings.Repeat("x", 200), "text/csv", strings.NewReader("1,2\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized tenant key: HTTP %d", resp.StatusCode)
	}
}

// TestTenantSpillRestoreRoundTrip: spilling an idle tenant to its
// marshaled image and lazily restoring it on the next touch is
// bit-exact — summary bytes and query answers identical across the
// round trip — and the default tenant never spills.
func TestTenantSpillRestoreRoundTrip(t *testing.T) {
	const tenantsN = 3
	svc, ts, _ := newTestServer(t, Config{Options: testOptions(), Shards: 2, BatchSize: 32})
	ctx := context.Background()

	pre := make([][]byte, tenantsN)
	for i := 0; i < tenantsN; i++ {
		cl := client.New(ts.URL, client.WithTenant(tenantKey(i)))
		if err := cl.AddBatch(ctx, testStream(1_500+i*101, uint64(600+i))); err != nil {
			t.Fatal(err)
		}
		pre[i] = tenantSummary(t, ts.URL, tenantKey(i))
	}
	if err := client.New(ts.URL).AddBatch(ctx, testStream(500, 7)); err != nil {
		t.Fatal(err)
	}

	if spilled := svc.spillIdle(0); spilled != tenantsN {
		t.Fatalf("spilled %d tenants, want %d (default must never spill)", spilled, tenantsN)
	}
	for i := 0; i < tenantsN; i++ {
		tn := svc.tenantByName(tenantKey(i))
		svc.mu.Lock()
		spilled := tn.spilledLocked()
		svc.mu.Unlock()
		if !spilled {
			t.Fatalf("tenant %d still live after spillIdle(0)", i)
		}
	}
	svc.mu.Lock()
	defLive := !svc.def.spilledLocked()
	svc.mu.Unlock()
	if !defLive {
		t.Fatal("default tenant spilled")
	}

	// Any touch restores: the summary bytes after the round trip must be
	// identical, and the per-tenant stats must record the cycle.
	for i := 0; i < tenantsN; i++ {
		if got := tenantSummary(t, ts.URL, tenantKey(i)); !bytes.Equal(got, pre[i]) {
			t.Fatalf("tenant %d: summary differs across spill/restore (%d vs %d bytes)",
				i, len(got), len(pre[i]))
		}
		st, err := client.New(ts.URL, client.WithTenant(tenantKey(i))).Stats(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if st.TenantSpills != 1 || st.TenantRestores != 1 {
			t.Fatalf("tenant %d: spills=%d restores=%d, want 1/1", i, st.TenantSpills, st.TenantRestores)
		}
		if st.Tenant != tenantKey(i) {
			t.Fatalf("stats names tenant %q", st.Tenant)
		}
	}

	// Spilled tenants keep ingesting after restore-by-write.
	if spilled := svc.spillIdle(0); spilled != tenantsN {
		t.Fatalf("second spill pass spilled %d", spilled)
	}
	cl := client.New(ts.URL, client.WithTenant(tenantKey(0)))
	if err := cl.AddBatch(ctx, testStream(100, 999)); err != nil {
		t.Fatalf("ingest into spilled tenant: %v", err)
	}
	n, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if n.TenantTuplesIngested == 0 {
		t.Fatal("no tuples counted after restore-by-write")
	}
}

// TestTenantGovernanceCaps: creation past MaxTenants is a typed 429,
// creation past MaxTenantBytes a typed 413, existing tenants keep
// serving, and the keyed streaming transport surfaces the same refusal
// as an AckTenant without killing the connection's protocol state.
func TestTenantGovernanceCaps(t *testing.T) {
	// MaxTenants counts the registry including the default tenant:
	// 3 = default + two keyed.
	svc, ts, _ := newTestServer(t, Config{Options: testOptions(), MaxTenants: 3})
	addr := startStream(t, svc)
	ctx := context.Background()

	for i := 0; i < 2; i++ {
		cl := client.New(ts.URL, client.WithTenant(tenantKey(i)))
		if err := cl.AddBatch(ctx, testStream(200, uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	err := client.New(ts.URL, client.WithTenant("one-too-many")).AddBatch(ctx, testStream(10, 3))
	var ae *client.APIError
	if !client.IsTenantRejected(err) || !asAPIError(err, &ae) || ae.Status != http.StatusTooManyRequests {
		t.Fatalf("tenant over count cap: %v", err)
	}
	// Existing tenants are unaffected by the rejection.
	if err := client.New(ts.URL, client.WithTenant(tenantKey(0))).AddBatch(ctx, testStream(10, 4)); err != nil {
		t.Fatal(err)
	}

	// The same refusal over the streaming transport: typed ack, latched
	// by Close.
	st, err := client.DialStream(ctx, addr, client.WithStreamTenant("stream-too-many"))
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Send(testStream(10, 5)); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err == nil || !strings.Contains(err.Error(), "governance") {
		t.Fatalf("stream tenant over cap: %v", err)
	}

	// Memory cap: the footprint gauge is sampled at commit, so the first
	// tenant lands (gauge still zero), the commit records its footprint,
	// and the next creation is refused 413.
	svc2, ts2, _ := newTestServer(t, Config{Options: testOptions(), MaxTenantBytes: 1})
	if err := client.New(ts2.URL, client.WithTenant("fits")).AddBatch(ctx, testStream(500, 6)); err != nil {
		t.Fatal(err)
	}
	if got := svc2.tenantBytes.Load(); got < 1 {
		t.Fatalf("footprint gauge %d after commit", got)
	}
	err = client.New(ts2.URL, client.WithTenant("evicted-by-cap")).AddBatch(ctx, testStream(10, 7))
	if !client.IsTenantRejected(err) || !asAPIError(err, &ae) || ae.Status != http.StatusRequestEntityTooLarge {
		t.Fatalf("tenant over memory cap: %v", err)
	}
}

// TestTenantReplayBypassesCaps: WAL replay and snapshot restore
// re-create whatever existed at the crash even under caps that would
// refuse those tenants today — acknowledged data outranks governance —
// while new creations still hit the lowered cap.
func TestTenantReplayBypassesCaps(t *testing.T) {
	cfg := walConfig(t, 1)
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	ctx := context.Background()
	pre := make([][]byte, 3)
	for i := range pre {
		cl := client.New(ts.URL, client.WithTenant(tenantKey(i)))
		if err := cl.AddBatch(ctx, testStream(400+i*31, uint64(800+i))); err != nil {
			t.Fatal(err)
		}
		pre[i] = tenantSummary(t, ts.URL, tenantKey(i))
	}
	crashAll(ts, svc)

	cfg2 := cfg
	cfg2.MaxTenants = 2 // would refuse all three keyed tenants today
	svc2, err := New(cfg2)
	if err != nil {
		t.Fatalf("recovery under a lowered cap: %v", err)
	}
	ts2 := httptest.NewServer(svc2.Handler())
	defer func() {
		ts2.Close()
		svc2.Close()
	}()
	for i := range pre {
		if got := tenantSummary(t, ts2.URL, tenantKey(i)); !bytes.Equal(got, pre[i]) {
			t.Fatalf("tenant %d lost across capped recovery", i)
		}
	}
	err = client.New(ts2.URL, client.WithTenant("fresh")).AddBatch(ctx, testStream(10, 1))
	if !client.IsTenantRejected(err) {
		t.Fatalf("new tenant under lowered cap: %v", err)
	}
}

// TestTenantChurnStressRace hammers one server with tenant churn —
// concurrent per-tenant ingest and queries while another goroutine
// spills and restores tenants and creations race the count cap — then
// checks every tenant float-exact against its serial oracle. Run with
// -race this is the data-race acceptance test for the registry, the
// spill path, and the per-tenant query cache.
func TestTenantChurnStressRace(t *testing.T) {
	const (
		tenantsN = 6
		rounds   = 8
		chunk    = 100
	)
	o := testOptions()
	svc, ts, _ := newTestServer(t, Config{Options: o, Shards: 2, BatchSize: 32, QueryMaxStale: 0})
	ctx := context.Background()

	streams := make([][]correlated.Tuple, tenantsN)
	for i := range streams {
		streams[i] = testStream(rounds*chunk, uint64(1_300+i))
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Churn: spill everything idle, repeatedly, while traffic flows.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				svc.spillIdle(0)
				time.Sleep(time.Millisecond)
			}
		}
	}()
	errc := make(chan error, tenantsN*2)
	for i := 0; i < tenantsN; i++ {
		wg.Add(1)
		go func(i int) { // ingest: sequential chunks for tenant i
			defer wg.Done()
			cl := client.New(ts.URL, client.WithTenant(tenantKey(i)))
			s := streams[i]
			for off := 0; off < len(s); off += chunk {
				if err := cl.AddBatch(ctx, s[off:off+chunk]); err != nil {
					errc <- fmt.Errorf("tenant %d ingest: %w", i, err)
					return
				}
			}
		}(i)
		wg.Add(1)
		go func(i int) { // queries race the ingest and the churn
			defer wg.Done()
			cl := client.New(ts.URL, client.WithTenant(tenantKey(i)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := cl.QueryLE(ctx, distinctY); err != nil {
					var ae *client.APIError
					if asAPIError(err, &ae) && ae.Status == http.StatusNotFound {
						continue // racing the tenant's first ingest
					}
					errc <- fmt.Errorf("tenant %d query: %w", i, err)
					return
				}
			}
		}(i)
	}
	// Wait for the ingesters (first tenantsN goroutines finish their
	// streams), then stop the churn and query loops.
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	for {
		allIn := true
		for i := 0; i < tenantsN; i++ {
			tn := svc.tenantByName(tenantKey(i))
			if tn == nil || tn.tuplesIngested.Load() < uint64(len(streams[i])) {
				allIn = false
				break
			}
		}
		select {
		case err := <-errc:
			close(stop)
			<-done
			t.Fatal(err)
		default:
		}
		if allIn {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(stop)
	<-done
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}

	// Every tenant float-exact against its own serial oracle, churn and
	// all.
	for i, s := range streams {
		offline, err := correlated.NewF2Summary(o)
		if err != nil {
			t.Fatal(err)
		}
		if err := offline.AddBatch(append([]correlated.Tuple(nil), s...)); err != nil {
			t.Fatal(err)
		}
		cl := client.New(ts.URL, client.WithTenant(tenantKey(i)))
		for _, c := range []uint64{0, distinctY / 2, distinctY, 1 << 15} {
			want, err1 := offline.QueryLE(c)
			got, err2 := cl.QueryLE(ctx, c)
			if err1 != nil || err2 != nil {
				t.Fatalf("tenant %d c=%d: %v %v", i, c, err1, err2)
			}
			if got != want {
				t.Fatalf("tenant %d LE c=%d after churn: service %v offline %v", i, c, got, want)
			}
		}
	}
}
