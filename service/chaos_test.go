package service

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"github.com/streamagg/correlated/client"
	"github.com/streamagg/correlated/internal/fault"
	"github.com/streamagg/correlated/internal/wal"
)

// Chaos suite: the fault-injection harness driving the whole daemon.
// Every scenario here enforces the same two contracts the paper-exact
// recovery tests do, under broken disks instead of clean ones:
//
//  1. No acknowledged tuple is ever lost — a server that acked a batch,
//     took disk faults, and was killed restarts byte-identical to a
//     crash-free oracle fed exactly the acknowledged operations.
//  2. The daemon never wedges — faults degrade it (503/AckDegraded,
//     reads still served) or shed load (429/AckBusy, connection kept),
//     and recovery probes return it to healthy once the disk heals.

// chaosConfig is walConfig plus an armed (but initially idle) injector
// between the server and the real filesystem.
func chaosConfig(t *testing.T) (Config, *fault.Injector) {
	t.Helper()
	cfg := walConfig(t, 2)
	inj := fault.NewInjector(fault.OS())
	cfg.FS = inj
	return cfg, inj
}

// mustPlan parses a fault-plan string or fails the test.
func mustPlan(t *testing.T, s string) *fault.Plan {
	t.Helper()
	p, err := fault.ParsePlan(s)
	if err != nil {
		t.Fatalf("ParsePlan(%q): %v", s, err)
	}
	return p
}

// chaosCrash simulates kill -9 for a fault-injected in-process server:
// drop the listener, stop the background loops (the recovery prober
// must not keep appending to WAL files a restarted server now owns),
// and kill the engine goroutines. No graceful flush, no final snapshot,
// no WAL close — the disk is left exactly as a SIGKILL would leave it.
func chaosCrash(ts *httptest.Server, svc *Server) {
	if ts != nil {
		ts.Close()
	}
	svc.closeMu.Lock()
	if !svc.closed {
		svc.closed = true // a later Close() becomes a no-op
		svc.closing.Store(true)
		close(svc.done)
	}
	svc.closeMu.Unlock()
	svc.Engine().Close()
}

// ingestOutcome is one sequential batch's fate during a fault run.
type ingestOutcome struct {
	batch int
	acked bool
}

// TestChaosFaultMatrix: for each disk-fault class, ingest sequentially
// while the fault plan is live, kill the server, heal the disk, restart,
// and verify the recovered merged summary is byte-identical to a
// crash-free oracle fed exactly the batches that were acknowledged.
// Requests the fault nacked must be absent; requests it acked must
// survive, regardless of what the fault did to the bytes underneath.
func TestChaosFaultMatrix(t *testing.T) {
	const batches, perBatch = 12, 400
	cases := []struct {
		name string
		plan string
	}{
		// Every ack-path fsync fails from batch 6 on: the log goes
		// sticky-broken and the server degrades; the acked prefix must
		// replay cleanly.
		{"sticky-sync-error", "sync/wal-:err@1+"},
		// The disk fills mid-run: writes return ENOSPC after a byte
		// budget, possibly leaving a torn prefix on the segment tail.
		{"enospc-with-torn-tail", "write/wal-:enospc@8192"},
		// One torn write: half the record lands, the append errors, and
		// the tail must be repaired so later appends (and replay) work.
		{"torn-write", "write/wal-:torn@2"},
		// Pure latency: nothing fails, everything acks, recovery is the
		// plain crash-exact contract under a slow disk.
		{"slow-sync", "sync/wal-:slow@1+=10ms"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg, inj := chaosConfig(t)
			svc, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			ts := httptest.NewServer(svc.Handler())
			cl := client.New(ts.URL, client.WithChunkSize(perBatch), client.WithRetries(0))
			ctx := context.Background()

			// Sequential ingest: one request per batch, so each commit
			// group is one batch on both the victim and the oracle and
			// byte-identity is exact, not approximate.
			outcomes := make([]ingestOutcome, 0, batches)
			for i := 0; i < batches; i++ {
				if i == 5 {
					inj.SetPlan(mustPlan(t, tc.plan))
				}
				err := cl.AddBatch(ctx, testStream(perBatch, uint64(100+i)))
				outcomes = append(outcomes, ingestOutcome{batch: i, acked: err == nil})
			}
			acked := 0
			for _, o := range outcomes {
				if o.acked {
					acked++
				}
			}
			if acked < 5 {
				t.Fatalf("fault nacked pre-fault batches: %+v", outcomes)
			}
			chaosCrash(ts, svc)
			inj.SetPlan(nil) // the disk heals before the restart

			svc2, err := New(cfg)
			if err != nil {
				t.Fatalf("restart after %s: %v", tc.name, err)
			}
			t.Cleanup(func() { svc2.Close() })
			got, err := svc2.Engine().MarshalMerged()
			if err != nil {
				t.Fatal(err)
			}

			// Crash-free oracle on a clean disk, fed only what was acked.
			oracle, err := New(walConfig(t, 2))
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { oracle.Close() })
			ots := httptest.NewServer(oracle.Handler())
			t.Cleanup(ots.Close)
			ocl := client.New(ots.URL, client.WithChunkSize(perBatch))
			for _, o := range outcomes {
				if !o.acked {
					continue
				}
				if err := ocl.AddBatch(ctx, testStream(perBatch, uint64(100+o.batch))); err != nil {
					t.Fatal(err)
				}
			}
			want, err := oracle.Engine().MarshalMerged()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("%s: recovered state differs from crash-free oracle over the %d acked batches (%d vs %d bytes)",
					tc.name, acked, len(got), len(want))
			}
		})
	}
}

// TestChaosDegradedModeHTTP walks the health state machine end to end
// over HTTP: a sticky fsync fault degrades the server; while degraded,
// writes get 503 + Retry-After (IsDegraded), queries and stats keep
// serving, /readyz reports not-ready while /healthz stays green; the
// admin recovery probe fails while the disk is still broken, then heals
// the machine once the fault clears, and writes resume.
func TestChaosDegradedModeHTTP(t *testing.T) {
	cfg, inj := chaosConfig(t)
	cfg.AdminToken = "t0k3n"
	svc, ts, _ := newTestServer(t, cfg)
	cl := client.New(ts.URL, client.WithChunkSize(512), client.WithRetries(0))
	ctx := context.Background()

	if err := cl.AddBatch(ctx, testStream(1_000, 1)); err != nil {
		t.Fatal(err)
	}
	// Break every fsync: ingests fail until the machine trips degraded.
	inj.SetPlan(mustPlan(t, "sync/wal-:err@1+"))
	var lastErr error
	for i := 0; i < healthFailThreshold+2 && !svc.healthDegraded(); i++ {
		lastErr = cl.AddBatch(ctx, testStream(10, uint64(50+i)))
	}
	if !svc.healthDegraded() {
		t.Fatalf("server did not degrade after repeated wal failures (last: %v)", lastErr)
	}
	// Baseline for the frozen-state check, taken at the moment the
	// machine trips: the nacked attempts that tripped it were applied to
	// the live engine before their durability barrier failed (the
	// ambiguous outcome a nack permits), but once degraded the gate
	// refuses writes before they touch the engine, so from here the
	// count must not move.
	preCount := func() uint64 {
		st, err := cl.Stats(ctx)
		if err != nil {
			t.Fatal(err)
		}
		return st.Count
	}()

	// Degraded contract: writes 503 with Retry-After and the degraded
	// message, reads fine, readyz not ready, healthz alive.
	err := cl.AddBatch(ctx, testStream(10, 99))
	if !client.IsDegraded(err) {
		t.Fatalf("degraded ingest error not IsDegraded: %v", err)
	}
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.RetryAfter <= 0 {
		t.Fatalf("degraded 503 carries no Retry-After: %v", err)
	}
	if err := cl.Push(ctx, []byte{0}); !client.IsDegraded(err) {
		t.Fatalf("degraded push error not IsDegraded: %v", err)
	}
	if _, err := cl.QueryLE(ctx, 150); err != nil {
		t.Fatalf("degraded server refused a query: %v", err)
	}
	st, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Health != "degraded" {
		t.Fatalf("stats health = %q, want degraded", st.Health)
	}
	if st.Count != preCount {
		t.Fatalf("degraded state moved: count %d, want %d", st.Count, preCount)
	}
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("/readyz while degraded: status %d, Retry-After %q", resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	if err := cl.Healthy(ctx); err != nil {
		t.Fatalf("/healthz must stay liveness-only while degraded: %v", err)
	}

	// The recovery endpoint is admin-gated, and an honest probe against
	// a still-broken disk must fail and leave the machine degraded.
	recover := func(token string) *http.Response {
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/recover", nil)
		if token != "" {
			req.Header.Set("X-Admin-Token", token)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
		return resp
	}
	if resp := recover("wrong"); resp.StatusCode != http.StatusForbidden {
		t.Fatalf("recover with bad token: %d", resp.StatusCode)
	}
	if resp := recover("t0k3n"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("recover against a broken disk: %d, want 503", resp.StatusCode)
	}
	if !svc.healthDegraded() {
		t.Fatal("failed probe healed the machine")
	}

	// Disk heals; the forced probe brings the server back, and writes
	// (including the batches nacked above) flow again.
	inj.SetPlan(nil)
	if resp := recover("t0k3n"); resp.StatusCode != http.StatusOK {
		t.Fatalf("recover after healing: %d", resp.StatusCode)
	}
	if svc.healthDegraded() {
		t.Fatal("server still degraded after successful probe")
	}
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz after recovery: %d", resp.StatusCode)
	}
	if err := cl.AddBatch(ctx, testStream(500, 7)); err != nil {
		t.Fatalf("ingest after recovery: %v", err)
	}
	st, err = cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Health != "healthy" || st.DegradedSeconds <= 0 {
		t.Fatalf("post-recovery stats: health=%q degraded_seconds=%v", st.Health, st.DegradedSeconds)
	}
}

// TestChaosBackgroundFsyncDegrades: under -wal-fsync=interval the ack
// path never fsyncs, so a dying disk surfaces only through the
// background sync loop's errors — which must escalate into the health
// machine instead of scrolling past in the logs.
func TestChaosBackgroundFsyncDegrades(t *testing.T) {
	cfg, inj := chaosConfig(t)
	cfg.WALFsync = "interval"
	cfg.WALFsyncInterval = 5 * time.Millisecond
	svc, ts, _ := newTestServer(t, cfg)
	cl := client.New(ts.URL, client.WithChunkSize(512), client.WithRetries(0))
	ctx := context.Background()

	if err := cl.AddBatch(ctx, testStream(500, 1)); err != nil {
		t.Fatal(err)
	}
	inj.SetPlan(mustPlan(t, "sync/wal-:err@1+"))
	// Keep the log dirty so every ticker fire attempts (and fails) an
	// fsync; the error streak must trip the degraded transition.
	deadline := time.Now().Add(10 * time.Second)
	for !svc.healthDegraded() && time.Now().Before(deadline) {
		cl.AddBatch(ctx, testStream(10, 2))
		time.Sleep(5 * time.Millisecond)
	}
	if !svc.healthDegraded() {
		t.Fatal("background fsync error streak did not degrade the server")
	}
	st, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.WALSyncErrors == 0 {
		t.Fatalf("stats do not expose the background sync errors: %+v", st)
	}
	inj.SetPlan(nil)
	// The background prober (healthProbeInterval cadence) heals it
	// without any admin intervention.
	waitUntil(t, 10*time.Second, "background recovery", func() bool {
		return !svc.healthDegraded()
	})
	if err := cl.AddBatch(ctx, testStream(100, 3)); err != nil {
		t.Fatalf("ingest after background recovery: %v", err)
	}
}

// TestChaosStreamDegradedAndBusy: the stream transport's side of both
// machines. A degraded server nacks frames AckDegraded without dropping
// the connection; an overloaded one (bounded commit queue + slow disk)
// nacks AckBusy; and the same connection carries committed frames again
// once each condition clears.
func TestChaosStreamDegradedAndBusy(t *testing.T) {
	cfg, inj := chaosConfig(t)
	cfg.IngestQueueMax = 1
	cfg.IngestGroupMax = 1
	svc, _, _ := newTestServer(t, cfg)
	addr := startStream(t, svc)
	ctx := context.Background()

	st, err := client.DialStream(ctx, addr, client.WithAckBuffer(64))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	sendOne := func(seed uint64) client.Ack {
		t.Helper()
		if err := st.Send(testStream(50, seed)); err != nil {
			t.Fatalf("send: %v", err)
		}
		select {
		case a := <-st.Acks():
			return a
		case <-time.After(10 * time.Second):
			t.Fatal("no ack within 10s (wedged)")
			return client.Ack{}
		}
	}

	if a := sendOne(1); a.Err() != nil {
		t.Fatalf("healthy frame nacked: %v", a.Err())
	}

	// Degrade the machine directly (the HTTP test proves the fault →
	// degrade path; this one isolates the transport contract).
	svc.degrade("chaos test: induced")
	a := sendOne(2)
	if !client.IsDegraded(a.Err()) {
		t.Fatalf("degraded frame ack = %v, want IsDegraded", a.Err())
	}
	if err := svc.recoverNow(); err != nil {
		t.Fatalf("recoverNow on a healthy disk: %v", err)
	}
	if a := sendOne(3); a.Err() != nil {
		t.Fatalf("frame after recovery nacked on the same conn: %v", a.Err())
	}

	// Overload: a one-slot commit queue behind a slow fsync. Frames
	// pumped back-to-back must overrun it and shed AckBusy while the
	// in-flight ones still commit.
	inj.SetPlan(mustPlan(t, "sync/wal-:slow@1+=50ms"))
	const burst = 16
	for i := 0; i < burst; i++ {
		if err := st.Send(testStream(50, uint64(10+i))); err != nil {
			t.Fatalf("burst send %d: %v", i, err)
		}
	}
	var ok, busy int
	for i := 0; i < burst; i++ {
		select {
		case a := <-st.Acks():
			switch {
			case a.Err() == nil:
				ok++
			case client.IsBusy(a.Err()):
				busy++
			default:
				t.Fatalf("burst ack %d: unexpected %v", i, a.Err())
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("burst ack %d never arrived (wedged)", i)
		}
	}
	if ok == 0 || busy == 0 {
		t.Fatalf("overload burst: %d ok, %d busy — want both classes", ok, busy)
	}
	inj.SetPlan(nil)
	if a := sendOne(99); a.Err() != nil {
		t.Fatalf("frame after shedding nacked on the same conn: %v", a.Err())
	}
}

// TestChaosOverloadShedHTTP: the HTTP side of the bounded queue — 429
// with a Retry-After derived from the live commit latency, IsBusy on
// the client, shed counted in metrics, and no acked data lost.
func TestChaosOverloadShedHTTP(t *testing.T) {
	cfg, inj := chaosConfig(t)
	cfg.IngestQueueMax = 1
	cfg.IngestGroupMax = 1
	_, ts, _ := newTestServer(t, cfg)
	ctx := context.Background()

	inj.SetPlan(mustPlan(t, "sync/wal-:slow@1+=50ms"))
	const workers = 12
	errs := make(chan error, workers)
	for i := 0; i < workers; i++ {
		go func(seed uint64) {
			cl := client.New(ts.URL, client.WithChunkSize(512), client.WithRetries(0))
			errs <- cl.AddBatch(ctx, testStream(100, seed))
		}(uint64(i))
	}
	var ok, busy int
	var firstBusy error
	for i := 0; i < workers; i++ {
		switch err := <-errs; {
		case err == nil:
			ok++
		case client.IsBusy(err):
			busy++
			if firstBusy == nil {
				firstBusy = err
			}
		default:
			t.Fatalf("unexpected ingest error under overload: %v", err)
		}
	}
	if ok == 0 || busy == 0 {
		t.Fatalf("overload: %d ok, %d busy — want both classes", ok, busy)
	}
	var ae *client.APIError
	if !errors.As(firstBusy, &ae) || ae.RetryAfter < time.Second {
		t.Fatalf("shed 429 carries no usable Retry-After: %v", firstBusy)
	}
	inj.SetPlan(nil)

	// Quiesced, the accepted work is all there and the shed is counted.
	cl := client.New(ts.URL)
	st, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Count != uint64(ok*100) {
		t.Fatalf("count %d after %d acked batches of 100", st.Count, ok)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "corrd_ingest_shed_total") {
		t.Fatal("metrics do not expose corrd_ingest_shed_total")
	}
}

// TestChaosSnapshotRetentionFallback: a bit-flipped newest snapshot must
// not take the daemon down — restore falls back to the previous
// retention slot and the (longer) WAL replay suffix rebuilds the exact
// state. With every slot corrupt, startup must refuse rather than serve
// an empty engine over data it was asked to remember.
func TestChaosSnapshotRetentionFallback(t *testing.T) {
	cfg, _ := chaosConfig(t)
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	cl := client.New(ts.URL, client.WithChunkSize(512))
	ctx := context.Background()

	a, b, c := testStream(1_000, 1), testStream(800, 2), testStream(600, 3)
	if err := cl.AddBatch(ctx, a); err != nil {
		t.Fatal(err)
	}
	if err := svc.Snapshot(); err != nil { // slot 0 covers batch A
		t.Fatal(err)
	}
	if err := cl.AddBatch(ctx, b); err != nil {
		t.Fatal(err)
	}
	if err := svc.Snapshot(); err != nil { // rotates: slot 1 = A, slot 0 = A+B
		t.Fatal(err)
	}
	if err := cl.AddBatch(ctx, c); err != nil { // WAL suffix past both
		t.Fatal(err)
	}
	chaosCrash(ts, svc)

	if _, err := os.Stat(cfg.SnapshotPath + ".1"); err != nil {
		t.Fatalf("retention slot 1 missing after two snapshots: %v", err)
	}
	// Bit-rot the newest snapshot: flip a magic byte so the decoder
	// rejects it outright.
	flip := func(path string) {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[0] ^= 0xff
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	flip(cfg.SnapshotPath)

	svc2, err := New(cfg)
	if err != nil {
		t.Fatalf("restart with corrupt newest snapshot: %v", err)
	}
	t.Cleanup(func() { svc2.Close() })
	if !svc2.Restored() {
		t.Fatal("fallback restore did not report restored")
	}
	if !svc2.snapFellBack {
		t.Fatal("restore did not record the retention fallback")
	}
	if svc2.walReplayed == 0 {
		t.Fatal("fallback restart replayed no WAL suffix")
	}
	got, err := svc2.Engine().MarshalMerged()
	if err != nil {
		t.Fatal(err)
	}

	oracle, err := New(walConfig(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { oracle.Close() })
	ots := httptest.NewServer(oracle.Handler())
	t.Cleanup(ots.Close)
	ocl := client.New(ots.URL, client.WithChunkSize(512))
	if err := ocl.AddBatch(ctx, a); err != nil {
		t.Fatal(err)
	}
	if err := ocl.AddBatch(ctx, b); err != nil {
		t.Fatal(err)
	}
	if err := ocl.AddBatch(ctx, c); err != nil {
		t.Fatal(err)
	}
	want, err := oracle.Engine().MarshalMerged()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("fallback-restored state differs from oracle (%d vs %d bytes)", len(got), len(want))
	}
	chaosCrash(nil, svc2)

	// Both slots corrupt: startup must fail loudly, not serve emptiness.
	flip(cfg.SnapshotPath + ".1")
	if _, err := New(cfg); err == nil {
		t.Fatal("startup served an empty engine over two corrupt snapshots")
	}
}

// TestChaosDegradedPrimaryReplication: a primary whose disk breaks
// degrades without poisoning its replica. The replication link stays
// attached through the degraded window, the nacked (rewound) records
// never ship — the followable frontier freezes at the last acked LSN —
// and once the disk heals and recovery passes, new acked records flow
// again and the replica converges byte-exactly. Promoting the replica
// then yields a server whose state is byte-identical to the primary's
// acked history, proving failover away from a degraded primary loses
// nothing.
func TestChaosDegradedPrimaryReplication(t *testing.T) {
	cfg, inj := chaosConfig(t)
	cfg.HeartbeatInterval = 20 * time.Millisecond
	svc, ts, cl := newTestServer(t, cfg)
	addr := startStream(t, svc)
	replicaSvc, rts := newReplica(t, cfg.Options, addr, func(c *Config) {
		c.WALDir = t.TempDir()
		c.WALFsync = "always"
	})
	ctx := context.Background()
	acme := client.New(ts.URL, client.WithTenant("acme"))

	if err := cl.AddBatch(ctx, testStream(800, 1)); err != nil {
		t.Fatal(err)
	}
	if err := acme.AddBatch(ctx, testStream(600, 2)); err != nil {
		t.Fatal(err)
	}
	acked := svc.walRef().LastLSN()
	waitUntil(t, 10*time.Second, "replica catch-up before the fault", func() bool {
		return replicaSvc.appliedLSN.Load() >= acked
	})

	// Break every fsync: ingests fail until the primary trips degraded.
	// Each failed group is rewound out of the log, so the durable
	// frontier — the only thing Follow ships — must not move.
	inj.SetPlan(mustPlan(t, "sync/wal-:err@1+"))
	var lastErr error
	for i := 0; i < healthFailThreshold+2 && !svc.healthDegraded(); i++ {
		lastErr = cl.AddBatch(ctx, testStream(10, uint64(70+i)))
	}
	if !svc.healthDegraded() {
		t.Fatalf("primary did not degrade after repeated wal failures (last: %v)", lastErr)
	}
	if got := svc.walRef().FollowableLSN(); got != acked {
		t.Fatalf("degraded primary's followable frontier moved: %d, want %d (nacked records must not ship)", got, acked)
	}
	if got := replicaSvc.appliedLSN.Load(); got != acked {
		t.Fatalf("replica applied LSN %d, want %d — it saw records the primary nacked", got, acked)
	}
	// The link itself survives the degraded window: the follower is
	// still counted on the primary's metrics surface.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "corrd_replica_conns 1") {
		t.Fatal("degraded primary dropped its replica connection")
	}

	// Disk heals; recovery probes pass; acked traffic flows to the
	// replica again.
	inj.SetPlan(nil)
	if err := svc.recoverNow(); err != nil {
		t.Fatalf("recoverNow after the disk healed: %v", err)
	}
	if err := cl.AddBatch(ctx, testStream(500, 5)); err != nil {
		t.Fatal(err)
	}
	if err := acme.AddBatch(ctx, testStream(400, 6)); err != nil {
		t.Fatal(err)
	}
	last := svc.walRef().LastLSN()
	waitUntil(t, 10*time.Second, "replica catch-up after recovery", func() bool {
		return replicaSvc.appliedLSN.Load() >= last
	})

	// The replica's contract is "byte-identical to the acked history" —
	// the primary's log, not its live engine: the batches that tripped
	// degradation were applied live before their durability barrier
	// failed (the ambiguous outcome a nack permits) but rewound out of
	// the log, so the live primary serves a superset until its next
	// restart. Replay the primary's own WAL into a fresh engine as the
	// crash-free oracle.
	oracle, err := New(Config{Options: cfg.Options, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { oracle.Close() })
	ots := httptest.NewServer(oracle.Handler())
	t.Cleanup(ots.Close)
	ost := newReplayState(0, true)
	err = svc.walRef().Replay(0, func(lsn uint64, typ wal.RecordType, payload []byte) error {
		_, aerr := oracle.applyRecord(lsn, typ, payload, ost)
		return aerr
	})
	if err != nil {
		t.Fatalf("oracle replay: %v", err)
	}
	for _, tenant := range []string{"", "acme"} {
		want, err := client.New(ots.URL, client.WithTenant(tenant)).Summary(ctx)
		if err != nil {
			t.Fatal(err)
		}
		got, err := client.New(rts.URL, client.WithTenant(tenant)).Summary(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want, got) {
			t.Fatalf("tenant %q: replica differs from the primary's acked history (%d vs %d bytes)", tenant, len(got), len(want))
		}
	}

	// Failover: the promoted replica carries the acked history and takes
	// writes, continuing the LSN space past everything it applied.
	if err := replicaSvc.Promote(); err != nil {
		t.Fatalf("promote: %v", err)
	}
	rcl := client.New(rts.URL)
	if err := rcl.AddBatch(ctx, testStream(100, 9)); err != nil {
		t.Fatalf("promoted replica refused a write: %v", err)
	}
	stats, err := rcl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Role != "coordinator" || !stats.Promoted {
		t.Fatalf("promoted stats wrong: role=%q promoted=%v", stats.Role, stats.Promoted)
	}
}
