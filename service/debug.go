package service

import (
	"net/http"
	"net/http/pprof"
)

// DebugHandler returns the profiling surface corrd serves on the
// opt-in -debug-addr listener: the net/http/pprof endpoints under
// /debug/pprof/. It is a separate handler — and in corrd a separate
// listener — deliberately: the serving address never exposes
// profiling, so operators firewall the two independently and the debug
// port can stay loopback-only in production.
func DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
