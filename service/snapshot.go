package service

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// Durability: the engine's snapshot form (per-shard framed, see
// shard.Sharded.MarshalBinary) is written to disk on a ticker and again
// on graceful shutdown, via the classic temp-file-then-rename dance so a
// crash mid-write can never corrupt the previous snapshot. Restore
// happens once, at startup, before the listener opens.

// writeFileAtomic writes data to path by writing a sibling temp file,
// syncing it, and renaming it over path. The rename is atomic on POSIX
// filesystems: readers see either the old snapshot or the new one,
// never a prefix.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	// Persist the rename itself; best effort — some filesystems do not
	// support syncing directories.
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// Snapshot marshals the engine under the driver lock and persists it
// atomically. It is a no-op when the server was built without a
// snapshot path. The transfer lock serializes it against the site
// role's delta-push rounds (see pushOnce).
func (s *Server) Snapshot() error {
	s.xferMu.Lock()
	defer s.xferMu.Unlock()
	return s.snapshotLocked()
}

// snapshotLocked is Snapshot minus the transfer lock, for callers that
// already hold it.
func (s *Server) snapshotLocked() error {
	if s.cfg.SnapshotPath == "" {
		return nil
	}
	s.mu.Lock()
	data, err := s.eng.MarshalBinary()
	s.mu.Unlock()
	if err != nil {
		s.metrics.snapshotErrors.Inc()
		return fmt.Errorf("service: snapshot marshal: %w", err)
	}
	if err := writeFileAtomic(s.cfg.SnapshotPath, data); err != nil {
		s.metrics.snapshotErrors.Inc()
		return fmt.Errorf("service: snapshot write: %w", err)
	}
	s.metrics.snapshotsWritten.Inc()
	s.metrics.lastSnapshotUnix.Set(time.Now().Unix())
	s.metrics.snapshotBytes.Set(int64(len(data)))
	return nil
}

// restoreSnapshot loads the snapshot file into the fresh engine at
// startup. A missing file is a clean first boot; anything else that
// fails is fatal (a daemon must not silently serve an empty state over
// data it was asked to remember).
func (s *Server) restoreSnapshot() error {
	data, err := os.ReadFile(s.cfg.SnapshotPath)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("service: snapshot read: %w", err)
	}
	if err := s.eng.UnmarshalBinary(data); err != nil {
		return fmt.Errorf("service: snapshot restore %s: %w", s.cfg.SnapshotPath, err)
	}
	s.restored = true
	s.metrics.snapshotBytes.Set(int64(len(data)))
	return nil
}

// snapshotLoop persists on every tick until the server closes.
func (s *Server) snapshotLoop(interval time.Duration) {
	defer s.wg.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if err := s.Snapshot(); err != nil {
				s.logf("snapshot: %v", err)
			}
		case <-s.done:
			return
		}
	}
}
