package service

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"github.com/streamagg/correlated/internal/tupleio"
)

// Durability: the engine's snapshot form (per-shard framed, see
// shard.Sharded.MarshalBinary) is written to disk on a ticker and again
// on graceful shutdown, via the classic temp-file-then-rename dance so a
// crash mid-write can never corrupt the previous snapshot. Restore
// happens once, at startup, before the listener opens.
//
// The file is wrapped in a small header that records the WAL position
// the snapshot covers (0 without a WAL), so startup knows exactly which
// log suffix to replay. A completed snapshot also appends a checkpoint
// marker to the WAL, which prunes every sealed segment the snapshot
// made redundant.

// snapshotMagic prefixes the single-tenant wrapped snapshot file
// format; snapshotMagicV2 prefixes the multi-tenant one. Legacy files
// (raw engine bytes, which start with the shard framing version 0x01)
// can never collide with either and are still restorable. A daemon
// holding only the default tenant writes the v1 form, so single-tenant
// deployments keep byte-identical snapshot files across this change.
var (
	snapshotMagic   = []byte("corrdsn1")
	snapshotMagicV2 = []byte("corrdsn2")
)

// encodeSnapshotFile wraps the engine image with the covered WAL LSN.
func encodeSnapshotFile(covered uint64, engine []byte) []byte {
	buf := make([]byte, 0, len(snapshotMagic)+binary.MaxVarintLen64+len(engine))
	buf = append(buf, snapshotMagic...)
	buf = binary.AppendUvarint(buf, covered)
	return append(buf, engine...)
}

// decodeSnapshotFile splits a snapshot file into the covered LSN and
// the engine image, accepting the pre-WAL raw format as covered = 0.
func decodeSnapshotFile(data []byte) (covered uint64, engine []byte, err error) {
	if !bytes.HasPrefix(data, snapshotMagic) {
		return 0, data, nil // legacy raw engine snapshot
	}
	rest := data[len(snapshotMagic):]
	covered, n := binary.Uvarint(rest)
	if n <= 0 {
		return 0, nil, errors.New("service: snapshot header truncated")
	}
	return covered, rest[n:], nil
}

// tenantImage is one tenant's marshaled engine state inside a
// multi-tenant snapshot.
type tenantImage struct {
	name  string
	image []byte
}

// encodeSnapshotFileV2 wraps N tenant images with the covered WAL LSN:
//
//	"corrdsn2" uvarint(covered) uvarint(count)
//	  count × ( uvarint(len(name)) name uvarint(len(image)) image )
//
// The tenant-name prefix is the same keyed grammar the WAL and the
// stream speak (tupleio.AppendTenant).
func encodeSnapshotFileV2(covered uint64, images []tenantImage) []byte {
	size := len(snapshotMagicV2) + 2*binary.MaxVarintLen64
	for _, ti := range images {
		size += 2*binary.MaxVarintLen64 + len(ti.name) + len(ti.image)
	}
	buf := make([]byte, 0, size)
	buf = append(buf, snapshotMagicV2...)
	buf = binary.AppendUvarint(buf, covered)
	buf = binary.AppendUvarint(buf, uint64(len(images)))
	for _, ti := range images {
		buf = tupleio.AppendTenant(buf, ti.name)
		buf = binary.AppendUvarint(buf, uint64(len(ti.image)))
		buf = append(buf, ti.image...)
	}
	return buf
}

// decodeSnapshotFileV2 parses a multi-tenant snapshot. Every length
// claim is bounded by the bytes actually present before slicing — the
// decoder discipline of the rest of the codec — and tenant keys must
// pass the wire validation. The returned images alias data.
func decodeSnapshotFileV2(data []byte) (covered uint64, images []tenantImage, err error) {
	rest := data[len(snapshotMagicV2):]
	covered, n := binary.Uvarint(rest)
	if n <= 0 {
		return 0, nil, errors.New("service: snapshot header truncated")
	}
	rest = rest[n:]
	count, n := binary.Uvarint(rest)
	if n <= 0 {
		return 0, nil, errors.New("service: snapshot tenant count truncated")
	}
	rest = rest[n:]
	if count > uint64(len(rest)) {
		// Each entry needs at least one byte; a hostile count is
		// rejected before any allocation sized by it.
		return 0, nil, fmt.Errorf("service: snapshot claims %d tenants in %d bytes", count, len(rest))
	}
	images = make([]tenantImage, 0, count)
	for i := uint64(0); i < count; i++ {
		name, r, err := tupleio.DecodeTenantPrefix(rest)
		if err != nil {
			return 0, nil, fmt.Errorf("service: snapshot tenant %d: %w", i, err)
		}
		sz, n := binary.Uvarint(r)
		if n <= 0 {
			return 0, nil, fmt.Errorf("service: snapshot tenant %d (%q): image length truncated", i, name)
		}
		r = r[n:]
		if sz > uint64(len(r)) {
			return 0, nil, fmt.Errorf("service: snapshot tenant %d (%q): image claims %d bytes, %d remain", i, name, sz, len(r))
		}
		images = append(images, tenantImage{name: string(name), image: r[:sz]})
		rest = r[sz:]
	}
	if len(rest) != 0 {
		return 0, nil, fmt.Errorf("service: snapshot has %d trailing bytes after %d tenants", len(rest), count)
	}
	return covered, images, nil
}

// writeFileAtomic writes data to path by writing a sibling temp file,
// syncing it, and renaming it over path. The rename is atomic on POSIX
// filesystems: readers see either the old snapshot or the new one,
// never a prefix. All calls route through s.fs so the fault harness can
// break any step.
func (s *Server) writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := s.fs.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer s.fs.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := s.fs.Rename(tmp.Name(), path); err != nil {
		return err
	}
	// Persist the rename itself; best effort — some filesystems do not
	// support syncing directories.
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// snapshotPathN is the retention slot path: slot 0 is the live
// SnapshotPath, slot i>0 is SnapshotPath + ".<i>" (higher = older).
func (s *Server) snapshotPathN(i int) string {
	if i == 0 {
		return s.cfg.SnapshotPath
	}
	return fmt.Sprintf("%s.%d", s.cfg.SnapshotPath, i)
}

// rotateSnapshots shifts the existing snapshots down one retention slot
// (path → path.1 → … → path.(keep-1), oldest dropped by the rename) so
// the upcoming write never destroys the last good restore point — a
// snapshot that lands corrupt on disk still leaves path.1 restorable.
func (s *Server) rotateSnapshots() {
	for i := s.cfg.SnapshotKeep - 1; i >= 1; i-- {
		err := s.fs.Rename(s.snapshotPathN(i-1), s.snapshotPathN(i))
		if err != nil && !errors.Is(err, os.ErrNotExist) {
			s.logf("snapshot: rotate %s: %v", s.snapshotPathN(i-1), err)
		}
	}
}

// Snapshot marshals the engine under the driver lock and persists it
// atomically. It is a no-op when the server was built without a
// snapshot path. The transfer lock serializes it against the site
// role's delta-push rounds (see pushOnce).
func (s *Server) Snapshot() error {
	s.xferMu.Lock()
	defer s.xferMu.Unlock()
	return s.snapshotLocked()
}

// buildSnapshot marshals every tenant into an encoded snapshot file
// and reports the WAL LSN the image covers, plus the total marshaled
// engine bytes (the metrics' measure). Callers hold the transfer lock;
// the driver lock is taken inside. It is shared by snapshotLocked (the
// disk path) and the primary's replica re-seed (replication.go), which
// ships the same bytes over the wire instead.
func (s *Server) buildSnapshot() (covered uint64, file []byte, dataLen int64, err error) {
	// Deterministic tenant order: sorted by key, so equal state writes
	// equal snapshot bytes regardless of creation order.
	tenants := s.tenantList()
	sort.Slice(tenants, func(i, j int) bool { return tenants[i].name < tenants[j].name })
	s.mu.Lock()
	images := make([]tenantImage, 0, len(tenants))
	for _, t := range tenants {
		ti := tenantImage{name: t.name}
		if t.eng != nil {
			if ti.image, err = t.eng.MarshalBinary(); err != nil {
				err = fmt.Errorf("tenant %q: %w", t.name, err)
				break
			}
		} else {
			// Spilled: the pending image IS the marshaled state —
			// untouched since the spill, consistent by construction.
			ti.image = t.pending
		}
		images = append(images, ti)
	}
	if err == nil {
		// A replica's coverage is what it has applied, not a log
		// position — it has no WAL until promotion.
		switch {
		case s.replicaMode.Load():
			covered = s.appliedLSN.Load()
		case s.wal != nil:
			covered = s.wal.LastLSN()
		}
	}
	s.mu.Unlock()
	if err != nil {
		return 0, nil, 0, err
	}
	// A daemon holding only the default tenant writes the v1 form so
	// single-tenant snapshot files stay byte-identical to pre-tenant
	// corrd (and restorable by it).
	if len(images) == 1 && images[0].name == "" {
		file = encodeSnapshotFile(covered, images[0].image)
	} else {
		file = encodeSnapshotFileV2(covered, images)
	}
	for _, ti := range images {
		dataLen += int64(len(ti.image))
	}
	return covered, file, dataLen, nil
}

// snapshotLocked is Snapshot minus the transfer lock, for callers that
// already hold it. The engine marshal and the covered-LSN read happen
// in one driver-lock critical section, so the recorded LSN is exactly
// the log position the image captures; once the file is durably
// renamed, the WAL checkpoints at that LSN and prunes.
func (s *Server) snapshotLocked() error {
	if s.cfg.SnapshotPath == "" {
		return nil
	}
	covered, file, dataLen, err := s.buildSnapshot()
	if err != nil {
		s.metrics.snapshotErrors.Inc()
		s.noteSnapshotResult(err)
		return fmt.Errorf("service: snapshot marshal: %w", err)
	}
	s.rotateSnapshots()
	if err := s.writeFileAtomic(s.cfg.SnapshotPath, file); err != nil {
		s.metrics.snapshotErrors.Inc()
		s.noteSnapshotResult(err)
		return fmt.Errorf("service: snapshot write: %w", err)
	}
	nTenants := 1
	if bytes.HasPrefix(file, snapshotMagicV2) {
		rest := file[len(snapshotMagicV2):]
		_, n := binary.Uvarint(rest)
		cnt, _ := binary.Uvarint(rest[n:])
		nTenants = int(cnt)
	}
	s.metrics.snapshotsWritten.Inc()
	s.metrics.lastSnapshotUnix.Set(time.Now().Unix())
	s.metrics.snapshotBytes.Set(dataLen)
	s.logf("snapshot: wrote %s (%d tenants, %d bytes, covered LSN %d)",
		s.cfg.SnapshotPath, nTenants, dataLen, covered)
	if w := s.walRef(); w != nil {
		if err := w.Checkpoint(covered); err != nil {
			// The snapshot is durable; a failed checkpoint only delays
			// pruning, so log rather than fail the snapshot.
			s.logf("wal checkpoint: %v", err)
		}
	}
	s.noteSnapshotResult(nil)
	return nil
}

// restoreSnapshot loads a snapshot at startup and returns the WAL LSN
// it covers. It walks the retention slots newest-first: a newest
// snapshot that is corrupt (torn write, bit rot) falls back to the
// previous good one — trading a longer WAL replay for a boot that still
// serves every acknowledged record the log holds. No file in any slot
// is a clean first boot; every slot present-but-corrupt is fatal (a
// daemon must not silently serve an empty state over data it was asked
// to remember).
func (s *Server) restoreSnapshot() (covered uint64, err error) {
	var lastErr error
	for i := 0; i < s.cfg.SnapshotKeep; i++ {
		path := s.snapshotPathN(i)
		data, err := s.fs.ReadFile(path)
		if errors.Is(err, os.ErrNotExist) {
			if i == 0 {
				continue // the live slot may be gone while a rotation slot survives
			}
			break // no older slots to try
		}
		if err != nil {
			lastErr = fmt.Errorf("service: snapshot read %s: %w", path, err)
			s.logf("snapshot: %v", lastErr)
			continue
		}
		covered, err := s.restoreSnapshotData(path, data)
		if err == nil {
			if i > 0 {
				s.snapFellBack = true
				s.logf("snapshot: newest snapshot unusable; restored fallback %s (covered LSN %d; the wal replay suffix grows accordingly)", path, covered)
			}
			return covered, nil
		}
		lastErr = err
		s.logf("snapshot: %v", err)
		s.resetRestoredState()
	}
	if lastErr != nil {
		return 0, lastErr
	}
	return 0, nil
}

// restoreSnapshotData applies one snapshot file's contents. In the
// multi-tenant form the default tenant restores eagerly (its engine
// already exists); every keyed tenant registers spilled and
// materializes lazily on first touch.
func (s *Server) restoreSnapshotData(path string, data []byte) (covered uint64, err error) {
	var dataLen int64
	if bytes.HasPrefix(data, snapshotMagicV2) {
		covered, images, err := decodeSnapshotFileV2(data)
		if err != nil {
			return 0, fmt.Errorf("service: snapshot restore %s: %w", path, err)
		}
		for _, ti := range images {
			if ti.name == "" {
				if err := s.def.eng.UnmarshalBinary(ti.image); err != nil {
					return 0, fmt.Errorf("service: snapshot restore %s: %w", path, err)
				}
			} else {
				// Copy out of the file buffer: the pending image may
				// outlive this function by the tenant's whole idle life.
				s.addRestoredTenant(ti.name, bytes.Clone(ti.image))
			}
			dataLen += int64(len(ti.image))
		}
		s.restored = true
		s.metrics.snapshotBytes.Set(dataLen)
		return covered, nil
	}
	covered, engine, err := decodeSnapshotFile(data)
	if err != nil {
		return 0, fmt.Errorf("service: snapshot restore %s: %w", path, err)
	}
	if err := s.def.eng.UnmarshalBinary(engine); err != nil {
		return 0, fmt.Errorf("service: snapshot restore %s: %w", path, err)
	}
	s.restored = true
	s.metrics.snapshotBytes.Set(int64(len(engine)))
	return covered, nil
}

// resetRestoredState undoes a half-applied restore attempt so the next
// retention slot starts from a clean engine. Startup-only, before any
// goroutine exists, so no locks are needed.
func (s *Server) resetRestoredState() {
	if err := s.def.eng.Reset(); err != nil {
		s.logf("snapshot: engine reset after failed restore: %v", err)
	}
	s.tenants = map[string]*tenant{"": s.def}
	s.tenantBytes.Store(0)
	s.restored = false
}

// snapshotLoop persists on every tick until the server closes.
func (s *Server) snapshotLoop(interval time.Duration) {
	defer s.wg.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if err := s.Snapshot(); err != nil {
				s.logf("snapshot: %v", err)
			}
		case <-s.done:
			return
		}
	}
}
