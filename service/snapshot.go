package service

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// Durability: the engine's snapshot form (per-shard framed, see
// shard.Sharded.MarshalBinary) is written to disk on a ticker and again
// on graceful shutdown, via the classic temp-file-then-rename dance so a
// crash mid-write can never corrupt the previous snapshot. Restore
// happens once, at startup, before the listener opens.
//
// The file is wrapped in a small header that records the WAL position
// the snapshot covers (0 without a WAL), so startup knows exactly which
// log suffix to replay. A completed snapshot also appends a checkpoint
// marker to the WAL, which prunes every sealed segment the snapshot
// made redundant.

// snapshotMagic prefixes the wrapped snapshot file format. Legacy files
// (raw engine bytes, which start with the shard framing version 0x01)
// can never collide with it and are still restorable.
var snapshotMagic = []byte("corrdsn1")

// encodeSnapshotFile wraps the engine image with the covered WAL LSN.
func encodeSnapshotFile(covered uint64, engine []byte) []byte {
	buf := make([]byte, 0, len(snapshotMagic)+binary.MaxVarintLen64+len(engine))
	buf = append(buf, snapshotMagic...)
	buf = binary.AppendUvarint(buf, covered)
	return append(buf, engine...)
}

// decodeSnapshotFile splits a snapshot file into the covered LSN and
// the engine image, accepting the pre-WAL raw format as covered = 0.
func decodeSnapshotFile(data []byte) (covered uint64, engine []byte, err error) {
	if !bytes.HasPrefix(data, snapshotMagic) {
		return 0, data, nil // legacy raw engine snapshot
	}
	rest := data[len(snapshotMagic):]
	covered, n := binary.Uvarint(rest)
	if n <= 0 {
		return 0, nil, errors.New("service: snapshot header truncated")
	}
	return covered, rest[n:], nil
}

// writeFileAtomic writes data to path by writing a sibling temp file,
// syncing it, and renaming it over path. The rename is atomic on POSIX
// filesystems: readers see either the old snapshot or the new one,
// never a prefix.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	// Persist the rename itself; best effort — some filesystems do not
	// support syncing directories.
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// Snapshot marshals the engine under the driver lock and persists it
// atomically. It is a no-op when the server was built without a
// snapshot path. The transfer lock serializes it against the site
// role's delta-push rounds (see pushOnce).
func (s *Server) Snapshot() error {
	s.xferMu.Lock()
	defer s.xferMu.Unlock()
	return s.snapshotLocked()
}

// snapshotLocked is Snapshot minus the transfer lock, for callers that
// already hold it. The engine marshal and the covered-LSN read happen
// in one driver-lock critical section, so the recorded LSN is exactly
// the log position the image captures; once the file is durably
// renamed, the WAL checkpoints at that LSN and prunes.
func (s *Server) snapshotLocked() error {
	if s.cfg.SnapshotPath == "" {
		return nil
	}
	s.mu.Lock()
	data, err := s.eng.MarshalBinary()
	var covered uint64
	if err == nil && s.wal != nil {
		covered = s.wal.LastLSN()
	}
	s.mu.Unlock()
	if err != nil {
		s.metrics.snapshotErrors.Inc()
		return fmt.Errorf("service: snapshot marshal: %w", err)
	}
	if err := writeFileAtomic(s.cfg.SnapshotPath, encodeSnapshotFile(covered, data)); err != nil {
		s.metrics.snapshotErrors.Inc()
		return fmt.Errorf("service: snapshot write: %w", err)
	}
	s.metrics.snapshotsWritten.Inc()
	s.metrics.lastSnapshotUnix.Set(time.Now().Unix())
	s.metrics.snapshotBytes.Set(int64(len(data)))
	if s.wal != nil {
		if err := s.wal.Checkpoint(covered); err != nil {
			// The snapshot is durable; a failed checkpoint only delays
			// pruning, so log rather than fail the snapshot.
			s.logf("wal checkpoint: %v", err)
		}
	}
	return nil
}

// restoreSnapshot loads the snapshot file into the fresh engine at
// startup and returns the WAL LSN the snapshot covers. A missing file
// is a clean first boot; anything else that fails is fatal (a daemon
// must not silently serve an empty state over data it was asked to
// remember).
func (s *Server) restoreSnapshot() (covered uint64, err error) {
	data, err := os.ReadFile(s.cfg.SnapshotPath)
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("service: snapshot read: %w", err)
	}
	covered, engine, err := decodeSnapshotFile(data)
	if err != nil {
		return 0, fmt.Errorf("service: snapshot restore %s: %w", s.cfg.SnapshotPath, err)
	}
	if err := s.eng.UnmarshalBinary(engine); err != nil {
		return 0, fmt.Errorf("service: snapshot restore %s: %w", s.cfg.SnapshotPath, err)
	}
	s.restored = true
	s.metrics.snapshotBytes.Set(int64(len(engine)))
	return covered, nil
}

// snapshotLoop persists on every tick until the server closes.
func (s *Server) snapshotLoop(interval time.Duration) {
	defer s.wg.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if err := s.Snapshot(); err != nil {
				s.logf("snapshot: %v", err)
			}
		case <-s.done:
			return
		}
	}
}
