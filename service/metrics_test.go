package service

import (
	"context"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// TestHistogramConcurrentObserve: the per-bucket fixed-point sums are
// exact under contention — no lost updates, no float rounding drift —
// which is the property the old CAS-retry float sum bought with a spin
// loop. Run under -race this is also the histogram's contention test.
func TestHistogramConcurrentObserve(t *testing.T) {
	h := newHistogram(defaultBuckets())
	// Each value is exact in 1e-9 fixed point, so the expected sum is
	// exact too.
	vals := []float64{0.00025, 0.001, 0.004, 0.05, 3}
	const goroutines, perG = 8, 20000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(vals[i%len(vals)])
			}
		}()
	}
	wg.Wait()

	wantCount := uint64(goroutines * perG)
	if got := h.count.Load(); got != wantCount {
		t.Fatalf("count = %d, want %d", got, wantCount)
	}
	var bucketTotal uint64
	for i := range h.counts {
		bucketTotal += h.counts[i].Load()
	}
	if bucketTotal != wantCount {
		t.Fatalf("bucket counts total %d, want %d", bucketTotal, wantCount)
	}
	var perVal float64
	for _, v := range vals {
		perVal += v
	}
	want := perVal * float64(goroutines) * float64(perG/len(vals))
	if got := h.sum(); got < want*(1-1e-9) || got > want*(1+1e-9) {
		t.Fatalf("sum = %v, want %v exactly (fixed-point adds lose nothing)", got, want)
	}
	if q := h.quantile(0.5); q <= 0 {
		t.Fatalf("median = %v, want > 0", q)
	}
	// Mass beyond the last bound (the value 3 here) reports the last
	// bound rather than inventing an upper edge.
	bounds := defaultBuckets()
	if q := h.quantile(0.999); q != bounds[len(bounds)-1] {
		t.Fatalf("p99.9 = %v, want last bound %v", q, bounds[len(bounds)-1])
	}
}

var (
	bucketRe = regexp.MustCompile(`^([a-z0-9_]+)_bucket\{(.*?)le="([^"]+)"\} (\S+)$`)
	countRe  = regexp.MustCompile(`^([a-z0-9_]+)_count(\{[^}]*\})? (\S+)$`)
)

// metricValue extracts the value of one exact series line (full match
// up to the space) from the exposition.
func metricValue(t *testing.T, body, series string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			v, err := strconv.ParseFloat(rest, 64)
			if err != nil {
				t.Fatalf("series %s: bad value %q", series, rest)
			}
			return v
		}
	}
	t.Fatalf("series %s not found in exposition", series)
	return 0
}

// TestMetricsExpositionInvariants scrapes a server that has done real
// work (concurrent ingest through the commit pipeline with a
// fsync=always WAL, queries, a snapshot) and checks the exposition is
// well-formed Prometheus text: every histogram's buckets are cumulative
// and non-decreasing with +Inf equal to _count, every corrd_* series
// the README documents is present, and the pipeline-stage histograms
// actually fired for all five stages.
func TestMetricsExpositionInvariants(t *testing.T) {
	dir := t.TempDir()
	svc, ts, cl := newTestServer(t, Config{
		Options:      testOptions(),
		Shards:       2,
		SnapshotPath: filepath.Join(dir, "snap"),
		WALDir:       filepath.Join(dir, "wal"),
		WALFsync:     "always",
	})
	ctx := context.Background()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := cl.AddBatch(ctx, testStream(2000, uint64(50+i))); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	if _, err := cl.QueryBatch(ctx, "le", []uint64{5, 50}); err != nil {
		t.Fatal(err)
	}
	if err := svc.Snapshot(); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)

	// Histogram shape: within each bucket family (name + non-le labels)
	// the rendered values are cumulative, so in file order they must be
	// non-decreasing and the +Inf bucket must equal the _count series.
	counts := map[string]float64{}
	for _, line := range strings.Split(body, "\n") {
		if m := countRe.FindStringSubmatch(line); m != nil {
			v, err := strconv.ParseFloat(m[3], 64)
			if err != nil {
				t.Fatalf("bad count line %q", line)
			}
			counts[m[1]+"_count"+m[2]] = v
		}
	}
	last := map[string]float64{}
	families := 0
	for _, line := range strings.Split(body, "\n") {
		m := bucketRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		name, prefix, le, valStr := m[1], m[2], m[3], m[4]
		v, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("bad bucket line %q", line)
		}
		fam := name + "{" + prefix + "}"
		if prev, ok := last[fam]; ok && v < prev {
			t.Fatalf("%s: bucket le=%q value %v < previous %v (not cumulative)", fam, le, v, prev)
		}
		last[fam] = v
		if le == "+Inf" {
			families++
			countKey := name + "_count"
			if p := strings.TrimSuffix(prefix, ","); p != "" {
				countKey += "{" + p + "}"
			}
			cv, ok := counts[countKey]
			if !ok {
				t.Fatalf("%s: no matching %s series", fam, countKey)
			}
			if v != cv {
				t.Fatalf("%s: +Inf bucket %v != count %v", fam, v, cv)
			}
			delete(last, fam)
		}
	}
	if families < 10 {
		t.Fatalf("only %d histogram families rendered, expected all handler/stage/wal histograms", families)
	}

	// Every metric name the README documents must exist in the scrape.
	readme, err := os.ReadFile("../README.md")
	if err != nil {
		t.Fatal(err)
	}
	nameRe := regexp.MustCompile("`(corrd_[a-z0-9_]+)`")
	documented := map[string]bool{}
	for _, m := range nameRe.FindAllStringSubmatch(string(readme), -1) {
		documented[m[1]] = true
	}
	if len(documented) < 20 {
		t.Fatalf("README documents only %d corrd_* metrics; the catalog table is missing", len(documented))
	}
	for name := range documented {
		if !strings.Contains(body, name) {
			t.Errorf("README documents %s but the exposition does not serve it", name)
		}
	}

	// The pipeline stages all fired: concurrent ingest over a
	// fsync=always WAL exercises enqueue, apply, append, fsync, and ack.
	for _, stage := range stageNames {
		series := `corrd_pipeline_stage_seconds_count{stage="` + stage + `"}`
		if v := metricValue(t, body, series); v <= 0 {
			t.Errorf("%s = %v, want > 0", series, v)
		}
	}
	// Every ack-path fsync is one stage observation and one WAL
	// histogram observation; the WAL histogram may add checkpoint
	// fsyncs, so stage count is bounded by it.
	fsyncStage := metricValue(t, body, `corrd_pipeline_stage_seconds_count{stage="fsync"}`)
	walFsyncs := metricValue(t, body, "corrd_wal_fsync_duration_seconds_count")
	if fsyncStage > walFsyncs {
		t.Errorf("fsync stage count %v > wal fsync histogram count %v", fsyncStage, walFsyncs)
	}
	if !strings.Contains(body, "corrd_build_info{") {
		t.Error("corrd_build_info missing from exposition")
	}
	if v := metricValue(t, body, "corrd_ingest_queue_depth"); v != 0 {
		t.Errorf("queue depth %v after quiescence, want 0", v)
	}

	// The replication series are part of the stable exposition even on a
	// server with no followers and no primary (all zero here), so
	// dashboards and alerts can rely on their presence before the first
	// replica ever attaches.
	for _, series := range []string{
		"corrd_replica_conns",
		"corrd_replica_records_sent_total",
		"corrd_replica_snapshots_sent_total",
		"corrd_replica_heartbeats_sent_total",
		"corrd_replica_records_applied_total",
		"corrd_replica_snapshots_installed_total",
		"corrd_replica_promotions_total",
		"corrd_replica_applied_lsn",
		"corrd_replica_primary_lsn",
		"corrd_replica_lag_records",
		"corrd_replica_lag_seconds",
	} {
		if v := metricValue(t, body, series); v != 0 {
			t.Errorf("%s = %v on a standalone server, want 0", series, v)
		}
	}
}
