package service

import (
	"bytes"
	"context"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	correlated "github.com/streamagg/correlated"
	"github.com/streamagg/correlated/client"
	"github.com/streamagg/correlated/internal/wal"
)

// The tests here pin the concurrent serving core: the commit pipeline's
// group boundaries must stay a pure function of the log (crash-exact
// recovery under concurrency — recovered bytes equal pre-crash bytes),
// and the epoch-cached read path must never corrupt state while ingest,
// pushes, snapshots, and queries overlap. Every stream keeps its
// distinct y count under Alpha, so the singleton level holds exact
// per-y state and query answers are float-exact against a serial
// oracle regardless of arrival order or shard partition.

// TestWALCrashRecoveryExactConcurrent is the tentpole's acceptance
// contract under concurrency: 8 clients ingest in parallel (their
// requests landing in whatever commit groups the pipeline forms), the
// server is killed without warning, and the restart — restore snapshot,
// replay the group records — rebuilds the exact bytes of the pre-crash
// state, per-shard form included. The group boundary is durable in the
// log, so replay flushes exactly where the live run flushed.
func TestWALCrashRecoveryExactConcurrent(t *testing.T) {
	const ingesters = 8
	cfg := walConfig(t, 2)
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	ctx := context.Background()

	ingest := func(s *httptest.Server, snapshotAfter func(i int)) {
		var wg sync.WaitGroup
		for i := 0; i < ingesters; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				cl := client.New(s.URL, client.WithChunkSize(256))
				stream := testStream(1_000, uint64(100+i))
				for off := 0; off < len(stream); off += 250 {
					end := min(off+250, len(stream))
					if err := cl.AddBatch(ctx, stream[off:end]); err != nil {
						t.Error(err)
						return
					}
					if snapshotAfter != nil {
						snapshotAfter(i)
					}
				}
			}(i)
		}
		wg.Wait()
	}
	// Interleave an explicit snapshot from one goroutine mid-stream so
	// recovery exercises restore-then-replay-suffix, not pure replay.
	var snapOnce sync.Once
	ingest(ts, func(i int) {
		snapOnce.Do(func() {
			if err := svc.Snapshot(); err != nil {
				t.Error(err)
			}
		})
	})
	if t.Failed() {
		t.FailNow()
	}

	// Every request is acknowledged, so every group is committed and the
	// engine is drained (WAL mode flushes per group): capture the exact
	// pre-crash bytes as the recovery oracle.
	preMerged, err := svc.Engine().MarshalMerged()
	if err != nil {
		t.Fatal(err)
	}
	preShards, err := svc.Engine().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	crash(ts, svc)

	svc2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	if svc2.walReplayed == 0 {
		t.Fatal("restart replayed no WAL records")
	}
	gotMerged, err := svc2.Engine().MarshalMerged()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotMerged, preMerged) {
		t.Fatalf("recovered merged summary differs from pre-crash state (%d vs %d bytes)",
			len(gotMerged), len(preMerged))
	}
	gotShards, err := svc2.Engine().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotShards, preShards) {
		t.Fatalf("recovered per-shard state differs from pre-crash state (%d vs %d bytes): group replay moved a worker batch boundary",
			len(gotShards), len(preShards))
	}

	// Value-level serial oracle: the singleton level's composition is a
	// sum of per-y sketches, independent of arrival order and shard
	// partition, so the recovered server must answer float-exactly like
	// one offline summary fed every acknowledged batch serially. (Whole-
	// marshal byte identity against an offline oracle is not defined
	// here: which dyadic levels materialize depends on per-shard mass,
	// which the concurrent arrival order perturbs.)
	offline, err := correlated.NewF2Summary(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < ingesters; i++ {
		if err := offline.AddBatch(testStream(1_000, uint64(100+i))); err != nil {
			t.Fatal(err)
		}
	}
	n, err := svc2.Engine().Count()
	if err != nil {
		t.Fatal(err)
	}
	if n != uint64(ingesters)*1_000 {
		t.Fatalf("recovered count %d, want %d", n, ingesters*1_000)
	}
	ts2 := httptest.NewServer(svc2.Handler())
	defer ts2.Close()
	cl2 := client.New(ts2.URL)
	for _, c := range []uint64{0, 20, 80, 150, 250, distinctY, 1 << 15} {
		want, err1 := offline.QueryLE(c)
		got, err2 := cl2.QueryLE(ctx, c)
		if err1 != nil || err2 != nil {
			t.Fatalf("c=%d: %v / %v", c, err1, err2)
		}
		if got != want {
			t.Fatalf("c=%d: recovered server %v, serial oracle %v", c, got, want)
		}
	}
}

// TestServiceStressRace drives one WAL-enabled server with everything at
// once — 6 concurrent ingesters, multi-cutoff query loops, site pushes,
// and a hot snapshot ticker — and then asserts the final state matches a
// serial oracle over the same acknowledged batches and images: exact
// count, and float-exact query answers in both directions (the singleton
// level's composition is a sum of per-y sketches, so it is independent
// of ingest order and shard partition — byte-identity of the whole
// marshal additionally requires the dyadic levels to stay virgin, which
// only the smaller crash-exactness streams guarantee). A kill -9 and
// recovery at the end must reproduce the pre-crash bytes exactly. Run
// under -race (the CI race job does) this is the serving core's
// interleaving torture test.
func TestServiceStressRace(t *testing.T) {
	o := testOptions()
	cfg := walConfig(t, 2)
	cfg.SnapshotInterval = 25 * time.Millisecond // hot ticker, real xfer contention
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	ctx := context.Background()

	const (
		ingesters        = 6
		batchesPerClient = 6
		batchSize        = 150
		pushers          = 2
		pushesEach       = 3
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Query loops: multi-cutoff, continuously, against the epoch cache.
	for q := 0; q < 2; q++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl := client.New(ts.URL)
			cutoffs := []uint64{10, 50, 150, distinctY}
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := cl.QueryBatch(ctx, "le", cutoffs); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}

	var mu sync.Mutex
	var ackedImages [][]byte
	for p := 0; p < pushers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			cl := client.New(ts.URL)
			for j := 0; j < pushesEach; j++ {
				site, err := correlated.NewF2Summary(o)
				if err != nil {
					t.Error(err)
					return
				}
				if err := site.AddBatch(testStream(200, uint64(7000+p*100+j))); err != nil {
					t.Error(err)
					return
				}
				img, err := site.MarshalBinary()
				if err != nil {
					t.Error(err)
					return
				}
				if err := cl.Push(ctx, img); err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				ackedImages = append(ackedImages, img)
				mu.Unlock()
			}
		}(p)
	}

	var iwg sync.WaitGroup
	for i := 0; i < ingesters; i++ {
		iwg.Add(1)
		go func(i int) {
			defer iwg.Done()
			cl := client.New(ts.URL, client.WithChunkSize(batchSize))
			for j := 0; j < batchesPerClient; j++ {
				if err := cl.AddBatch(ctx, testStream(batchSize, uint64(9000+i*100+j))); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	iwg.Wait()
	close(stop)
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Serial oracle: every acknowledged batch and image, applied to one
	// offline summary, in an order unrelated to the server's.
	offline, err := correlated.NewF2Summary(o)
	if err != nil {
		t.Fatal(err)
	}
	var ackedTuples uint64
	for i := 0; i < ingesters; i++ {
		for j := 0; j < batchesPerClient; j++ {
			if err := offline.AddBatch(testStream(batchSize, uint64(9000+i*100+j))); err != nil {
				t.Fatal(err)
			}
			ackedTuples += batchSize
		}
	}
	for _, img := range ackedImages {
		if err := offline.MergeMarshaled(img); err != nil {
			t.Fatal(err)
		}
		ackedTuples += 200
	}
	cl := client.New(ts.URL)
	st, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Count != ackedTuples {
		t.Fatalf("server holds %d tuples, oracle acknowledged %d", st.Count, ackedTuples)
	}
	cutoffs := []uint64{0, 10, 25, 50, 100, 150, 200, 250, distinctY, 1 << 15}
	for _, c := range cutoffs {
		wantLE, err1 := offline.QueryLE(c)
		gotLE, err2 := cl.QueryLE(ctx, c)
		wantGE, err3 := offline.QueryGE(c)
		gotGE, err4 := cl.QueryGE(ctx, c)
		if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
			t.Fatalf("c=%d: %v %v %v %v", c, err1, err2, err3, err4)
		}
		if gotLE != wantLE || gotGE != wantGE {
			t.Fatalf("c=%d: server (LE %v, GE %v) oracle (LE %v, GE %v)", c, gotLE, gotGE, wantLE, wantGE)
		}
	}

	// And the whole thing survives a kill -9: the recovered bytes must
	// reproduce the pre-crash state exactly (group replay).
	pre, err := svc.Engine().MarshalMerged()
	if err != nil {
		t.Fatal(err)
	}
	crash(ts, svc)
	svc2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	recovered, err := svc2.Engine().MarshalMerged()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(recovered, pre) {
		t.Fatalf("post-crash recovery differs from pre-crash state (%d vs %d bytes)", len(recovered), len(pre))
	}
	n2, err := svc2.Engine().Count()
	if err != nil {
		t.Fatal(err)
	}
	if n2 != ackedTuples {
		t.Fatalf("recovered count %d, want %d", n2, ackedTuples)
	}
}

// TestCommitGroupMixedValidation: a group with an invalid member rejects
// exactly that member — the valid members commit, the group's WAL record
// carries only them, and replay rebuilds the same state.
func TestCommitGroupMixedValidation(t *testing.T) {
	cfg := walConfig(t, 2)
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	good1 := testStream(300, 1)
	good2 := testStream(300, 2)
	bad := []correlated.Tuple{{X: 1, Y: cfg.Options.YMax + 10, W: 1}} // y beyond YMax
	jobs := []*ingestJob{
		{tuples: good1, done: make(chan struct{}, 1)},
		{tuples: bad, done: make(chan struct{}, 1)},
		{tuples: good2, done: make(chan struct{}, 1)},
	}
	svc.commitGroup(jobs)
	for i, j := range jobs {
		<-j.done
		wantKind := ingestOK
		if i == 1 {
			wantKind = ingestErrValidate
		}
		if j.kind != wantKind {
			t.Fatalf("job %d: kind %d, err %v", i, j.kind, j.err)
		}
	}
	n, err := svc.def.eng.Count()
	if err != nil {
		t.Fatal(err)
	}
	if n != 600 {
		t.Fatalf("engine holds %d tuples, want 600", n)
	}
	pre, err := svc.def.eng.MarshalMerged()
	if err != nil {
		t.Fatal(err)
	}
	// The log's view: exactly one group record with the two valid
	// members, in commit order.
	var types []wal.RecordType
	if err := svc.wal.Replay(0, func(lsn uint64, typ wal.RecordType, payload []byte) error {
		types = append(types, typ)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(types) != 1 || types[0] != wal.RecordIngestGroup {
		t.Fatalf("log records %v, want one RecordIngestGroup", types)
	}
	svc.def.eng.Close()
	svc.shutdownStorage()

	svc2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	got, err := svc2.Engine().MarshalMerged()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, pre) {
		t.Fatal("replayed group state differs from live state")
	}
}

// TestQueryMaxStale: with a staleness budget the cache keeps serving
// through state changes until the window expires, then catches up.
func TestQueryMaxStale(t *testing.T) {
	cfg := Config{Options: testOptions(), Shards: 1, QueryMaxStale: time.Hour}
	svc, _, cl := newTestServer(t, cfg)
	ctx := context.Background()
	if err := cl.AddBatch(ctx, testStream(1_000, 61)); err != nil {
		t.Fatal(err)
	}
	first, err := cl.QueryLE(ctx, distinctY) // builds the cache
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.AddBatch(ctx, testStream(1_000, 62)); err != nil {
		t.Fatal(err)
	}
	within, err := cl.QueryLE(ctx, distinctY)
	if err != nil {
		t.Fatal(err)
	}
	if within != first {
		t.Fatalf("query inside the staleness window rebuilt: %v vs %v", within, first)
	}
	// Deterministic expiry: age the cache past the window by hand.
	svc.def.queryMu.Lock()
	svc.def.cacheBuilt = time.Now().Add(-2 * time.Hour)
	svc.def.queryMu.Unlock()
	after, err := cl.QueryLE(ctx, distinctY)
	if err != nil {
		t.Fatal(err)
	}
	if after == first {
		t.Fatalf("query after the window still served the stale cache: %v", after)
	}
	if got := svc.metrics.queryCacheRebuilds.Load(); got != 2 {
		t.Fatalf("rebuilds = %d, want 2 (initial build + post-expiry)", got)
	}
}
