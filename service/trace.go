package service

import (
	"fmt"
	"runtime"
	"runtime/debug"

	"github.com/streamagg/correlated/client"
)

// Pipeline-stage tracing: every acknowledged ingest rides the commit
// pipeline (pipeline.go), and this file names the stages its latency
// decomposes into, so a throughput regression turns into a diagnosis
// ("the time went to fsync") instead of a bisection. Stamps are plain
// time.Time field writes on the pooled job struct and observations are
// the atomic histogram adds in metrics.go — the hot path takes no lock
// and allocates nothing for tracing.
//
// Stage boundaries:
//
//	enqueue  handler enqueues the job → the committer dequeues its
//	         group (queue wait; per job)
//	apply    group dequeue → engine AddBatch for every member plus the
//	         touched-tenant flushes, driver-lock wait included (per
//	         group)
//	append   the group's single WAL record append (per group)
//	fsync    the group-wide durability barrier, wal.Sync outside the
//	         driver lock — only under fsync=always, so its histogram
//	         count matches corrd_wal_fsync_duration_seconds group for
//	         group on the ack path (per group)
//	ack      the committer's wake of a member → that member's handler
//	         or stream acker resumes (scheduler handoff; per job)
//
// Per-group stages divide by corrd_ingest_group_size for per-request
// attribution; the same breakdown is served in /v1/stats
// (pipeline_stages) and embedded in corrgen load reports, so
// benchmarks/latest.json carries stage attributions next to the
// client-observed latencies.

// Stage indices into metrics.stages.
const (
	stageEnqueue = iota
	stageApply
	stageAppend
	stageFsync
	stageAck
	numStages
)

// stageNames fixes the exposition order and the stage label values.
var stageNames = [numStages]string{"enqueue", "apply", "append", "fsync", "ack"}

// stageBuckets spans a committer dequeue on an idle queue (~10µs)
// through a saturated spinning disk's fsync (~1s).
func stageBuckets() []float64 {
	return []float64{0.00001, 0.000025, 0.00005, 0.0001, 0.00025, 0.0005,
		0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1}
}

// groupSizeBuckets covers a lone client's groups of one through the
// defaultGroupMax member cap.
func groupSizeBuckets() []float64 {
	return []float64{1, 2, 4, 8, 16, 32, 64, 128, 256}
}

// groupTuplesBuckets covers wire-speed 16-tuple frames through the
// maxGroupTuples volume cap.
func groupTuplesBuckets() []float64 {
	return []float64{16, 64, 256, 1024, 4096, 16384, 65536, 262144, 1048576}
}

// stageBreakdown summarizes the stage histograms for /v1/stats: count,
// mean, and interpolated p50/p99 per stage, in milliseconds. Returns
// nil until the pipeline has committed something.
func (m *metrics) stageBreakdown() map[string]client.StageStats {
	var out map[string]client.StageStats
	for i, name := range stageNames {
		h := m.stages[i]
		n := h.count.Load()
		if n == 0 {
			continue
		}
		if out == nil {
			out = make(map[string]client.StageStats, numStages)
		}
		out[name] = client.StageStats{
			Count: n,
			AvgMs: h.sum() / float64(n) * 1000,
			P50Ms: h.quantile(0.50) * 1000,
			P99Ms: h.quantile(0.99) * 1000,
		}
	}
	return out
}

// buildInfoLine renders the corrd_build_info sample once at startup:
// the Go toolchain, the main module path, and the VCS revision when the
// binary was built from a checkout ("unknown" otherwise, e.g. go test
// binaries).
func buildInfoLine() string {
	module, revision := "unknown", "unknown"
	if bi, ok := debug.ReadBuildInfo(); ok {
		if bi.Main.Path != "" {
			module = bi.Main.Path
		}
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" {
				revision = s.Value
			}
		}
	}
	return fmt.Sprintf("corrd_build_info{go_version=%q,module=%q,revision=%q} 1",
		runtime.Version(), module, revision)
}
