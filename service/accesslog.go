package service

import (
	"crypto/rand"
	"encoding/hex"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Structured access logging: one JSON line per API request and per
// stream frame batch, carrying the request ID the client supplied (or
// the one the server minted and echoed back). The serving path never
// writes to the destination itself — record places a fixed-size struct
// into a preallocated ring (strings are stored by reference, so the
// record path allocates nothing; pinned by TestAccessLogRecordZeroAlloc)
// and a background writer goroutine formats and writes the drained
// batch. When the ring is full the record is dropped and counted
// (corrd_access_log_dropped_total) — a stalled log destination costs
// visibility, never throughput or latency.

// accessLogRing is the fixed ring capacity: enough to absorb a burst
// across a slow write, small enough to bound the memory a dead
// destination can pin.
const accessLogRing = 1024

// accessRecord is one access-log line before formatting. String fields
// are held by reference; everything it points at (method, path,
// interned tenant names, request IDs) outlives the ring slot.
type accessRecord struct {
	ts        time.Time
	transport string // "http" or "stream"
	method    string
	path      string
	tenant    string
	requestID string // stream: the per-connection ID
	status    int    // HTTP status, or the stream ack status code
	bytesIn   int64
	bytesOut  int64
	dur       time.Duration
	seq       uint64 // stream frame sequence; 0 for HTTP
}

// accessLog is the ring-buffer logger.
type accessLog struct {
	w       io.Writer
	dropped *counter

	mu   sync.Mutex
	ring []accessRecord
	head int // oldest undrained record
	n    int // records currently in the ring

	notify chan struct{} // capacity 1: "the ring is non-empty"
	done   chan struct{}
	wg     sync.WaitGroup

	// Writer-goroutine scratch, reused across flushes so steady-state
	// draining does not allocate either.
	drain []accessRecord
	buf   []byte
}

// newAccessLog starts the background writer; Close stops it after a
// final drain.
func newAccessLog(w io.Writer, size int, dropped *counter) *accessLog {
	l := &accessLog{
		w:       w,
		dropped: dropped,
		ring:    make([]accessRecord, size),
		notify:  make(chan struct{}, 1),
		done:    make(chan struct{}),
	}
	l.wg.Add(1)
	go l.writer()
	return l
}

// record enqueues one access record: a struct copy into the ring under
// a short mutex, a non-blocking notify, zero allocations. A full ring
// drops the record and counts it.
func (l *accessLog) record(r accessRecord) {
	l.mu.Lock()
	if l.n == len(l.ring) {
		l.mu.Unlock()
		l.dropped.Inc()
		return
	}
	i := l.head + l.n
	if i >= len(l.ring) {
		i -= len(l.ring)
	}
	l.ring[i] = r
	l.n++
	l.mu.Unlock()
	select {
	case l.notify <- struct{}{}:
	default:
	}
}

func (l *accessLog) writer() {
	defer l.wg.Done()
	for {
		select {
		case <-l.notify:
			l.flush()
		case <-l.done:
			l.flush()
			return
		}
	}
}

// flush drains the ring into writer-owned scratch (so the mutex is
// held only for the copy, never across a write), then formats and
// writes each record.
func (l *accessLog) flush() {
	l.mu.Lock()
	l.drain = l.drain[:0]
	for l.n > 0 {
		l.drain = append(l.drain, l.ring[l.head])
		l.ring[l.head] = accessRecord{} // release the string references
		l.head++
		if l.head == len(l.ring) {
			l.head = 0
		}
		l.n--
	}
	l.mu.Unlock()
	for i := range l.drain {
		l.buf = appendAccessJSON(l.buf[:0], &l.drain[i])
		l.w.Write(l.buf)
		l.drain[i] = accessRecord{}
	}
}

// Close drains whatever is still queued and stops the writer.
func (l *accessLog) Close() {
	close(l.done)
	l.wg.Wait()
}

// appendAccessJSON formats one record as a JSON line using only
// append-style formatting into the reused buffer.
func appendAccessJSON(b []byte, r *accessRecord) []byte {
	b = append(b, `{"ts":"`...)
	b = r.ts.AppendFormat(b, time.RFC3339Nano)
	b = append(b, `","transport":"`...)
	b = append(b, r.transport...)
	b = append(b, `","method":`...)
	b = appendJSONString(b, r.method)
	b = append(b, `,"path":`...)
	b = appendJSONString(b, r.path)
	b = append(b, `,"tenant":`...)
	b = appendJSONString(b, r.tenant)
	b = append(b, `,"request_id":`...)
	b = appendJSONString(b, r.requestID)
	if r.seq != 0 {
		b = append(b, `,"seq":`...)
		b = strconv.AppendUint(b, r.seq, 10)
	}
	b = append(b, `,"status":`...)
	b = strconv.AppendInt(b, int64(r.status), 10)
	b = append(b, `,"bytes_in":`...)
	b = strconv.AppendInt(b, r.bytesIn, 10)
	b = append(b, `,"bytes_out":`...)
	b = strconv.AppendInt(b, r.bytesOut, 10)
	b = append(b, `,"ms":`...)
	b = strconv.AppendFloat(b, float64(r.dur)/float64(time.Millisecond), 'f', 3, 64)
	return append(b, "}\n"...)
}

// appendJSONString appends s as a JSON string, escaping quotes,
// backslashes, and control bytes (paths and tenant keys are
// caller-supplied bytes).
func appendJSONString(b []byte, s string) []byte {
	const hexDigits = "0123456789abcdef"
	b = append(b, '"')
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case c == '"' || c == '\\':
			b = append(b, '\\', c)
		case c < 0x20:
			b = append(b, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xf])
		default:
			b = append(b, c)
		}
	}
	return append(b, '"')
}

// ridPrefix distinguishes this process's minted request IDs from every
// other corrd's; the suffix is a process-local counter.
var ridPrefix = func() string {
	var b [4]byte
	rand.Read(b[:])
	return hex.EncodeToString(b[:])
}()

var ridCounter atomic.Uint64

// newRequestID mints a process-unique request ID for requests (and
// stream connections) that did not supply an X-Request-ID. Minting may
// allocate — it happens once per request, not per record; only
// accessLog.record is pinned allocation-free.
func newRequestID() string {
	return ridPrefix + "-" + strconv.FormatUint(ridCounter.Add(1), 10)
}

// statusWriter captures the status code and response bytes for the
// access record.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	n, err := w.ResponseWriter.Write(b)
	w.bytes += int64(n)
	return n, err
}
