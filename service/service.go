// Package service implements corrd, the correlated-aggregation network
// service: the paper's distributed model (remote sites streaming tuples,
// a coordinator answering AGG{x : y <= c} queries over merged site
// summaries) as an HTTP daemon built entirely on the repo's mergeable
// summaries and the shard parallel-ingest engine — standard library
// only, zero new dependencies.
//
// One Server plays either role:
//
//   - coordinator: accepts tuple batches on POST /v1/ingest, site
//     summary images on POST /v1/push (folded straight into the engine
//     via MergeMarshaled, no full decode round-trip), and answers
//     GET /v1/query?op=le|ge&c=... from the merged state.
//   - site (Config.PushTo set): ingests locally like a coordinator and
//     ships its merged summary image upstream on a ticker, resetting the
//     local engine after each acknowledged push — the delta-push
//     protocol; mergeability makes the coordinator's state the summary
//     of the union stream.
//
// Durability is two cooperating layers: a periodic snapshot of the
// engine's marshaled state (atomic temp-file-then-rename; restored on
// startup) and, with Config.WALDir set, a write-ahead log that records
// every accepted ingest batch and push image before the request is
// acknowledged — startup becomes restore-snapshot-then-replay-suffix,
// so under WALFsync "always" an acknowledged request survives kill -9
// and the recovered state is bit-identical to a crash-free run (see
// wal.go). Observability is a dependency-free Prometheus-text /metrics
// plus /healthz and /v1/stats, and shutdown is graceful: drain HTTP,
// flush the shards, final push (site role), final snapshot.
//
// The HTTP surface is deliberately small and wire-stable; see the
// README's "Running the service" section for the endpoint catalogue and
// curl recipes.
package service

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	correlated "github.com/streamagg/correlated"
	"github.com/streamagg/correlated/client"
	"github.com/streamagg/correlated/internal/fault"
	"github.com/streamagg/correlated/internal/replica"
	"github.com/streamagg/correlated/internal/wal"
	"github.com/streamagg/correlated/shard"
)

// Engine is what the service needs from the sharded engine: batched
// ingest, dual-direction queries, merge-in of pushed images, and the two
// wire forms (per-shard snapshot, merged push image). *shard.Sharded[S]
// satisfies it for every root summary type.
type Engine interface {
	AddBatch(batch []correlated.Tuple) error
	QueryLE(c uint64) (float64, error)
	QueryGE(c uint64) (float64, error)
	QueryLEBatch(cutoffs []uint64, out []float64) error
	QueryGEBatch(cutoffs []uint64, out []float64) error
	RefreshCached() error
	CachedQueryLEBatch(cutoffs []uint64, out []float64) error
	CachedQueryGEBatch(cutoffs []uint64, out []float64) error
	Count() (uint64, error)
	Space() (int64, error)
	Flush() error
	Reset() error
	Shards() int
	MarshalBinary() ([]byte, error)
	UnmarshalBinary(data []byte) error
	MarshalMerged() ([]byte, error)
	MergeMarshaled(data []byte) error
	Close() error
}

// Config configures a Server. The zero value is not usable: Options
// must carry a valid (Eps, Delta, YMax) triple, exactly as for the
// library constructors.
type Config struct {
	// Aggregate selects the summary type: "f2" (default), "fk",
	// "count", or "sum".
	Aggregate string
	// K is the moment order when Aggregate is "fk".
	K int
	// Options configures every shard summary. All sites and their
	// coordinator must share it verbatim — Seed included — or pushes
	// are rejected as incompatible.
	Options correlated.Options
	// Shards is the engine's worker count; < 1 means 1.
	Shards int
	// BatchSize overrides the shard handoff granularity; 0 keeps the
	// shard package default.
	BatchSize int
	// IngestGroupMax caps how many queued ingest requests one commit
	// group may carry (the group shares one WAL fsync and one engine
	// drain); <= 0 means 256. See pipeline.go.
	IngestGroupMax int
	// QueryMaxStale bounds how old the epoch-cached merged summary may
	// be before a query forces a rebuild. 0 (the default) rebuilds
	// whenever the engine state moved since the cache was built —
	// every query sees every acknowledged write. A positive value lets
	// queries keep serving the existing cache for up to that long even
	// though the state moved, capping the rebuild rate at one per
	// window no matter how hot the query side runs: under sustained
	// ingest each rebuild is a full cross-shard merge holding the
	// driver lock, so a hot query loop with QueryMaxStale=0 taxes
	// ingest with one merge per committed group. Estimates are
	// approximate by construction; operators who can absorb a bounded
	// staleness window buy back the entire merge tax.
	QueryMaxStale time.Duration

	// SnapshotPath enables durability: the engine state is persisted
	// there on every SnapshotInterval tick and at shutdown, and
	// restored from it at startup. Empty disables snapshots.
	SnapshotPath string
	// SnapshotInterval defaults to 30s when SnapshotPath is set.
	SnapshotInterval time.Duration

	// WALDir enables the write-ahead log: every accepted ingest batch
	// and push image is appended (and, per WALFsync, fsynced) before
	// the request is acknowledged, and startup replays the log suffix
	// the snapshot does not cover. Empty disables the WAL and leaves
	// the durability window at the snapshot interval. Pair it with
	// SnapshotPath so checkpoints can prune the log.
	WALDir string
	// WALFsync is the fsync policy: "always" (default — an
	// acknowledged request survives kill -9), "interval", or "off".
	WALFsync string
	// WALFsyncInterval is the ticker period for WALFsync="interval";
	// <= 0 means 100ms.
	WALFsyncInterval time.Duration
	// WALSegmentBytes is the segment rotation threshold; <= 0 means
	// 64 MiB.
	WALSegmentBytes int64

	// SnapshotKeep is how many snapshot generations to retain on disk
	// (the live file plus rotated .1, .2, ... predecessors); <= 0 means
	// 2. Startup falls back through the generations when the newest is
	// corrupt or truncated, replaying the correspondingly longer WAL
	// suffix.
	SnapshotKeep int

	// FS routes the WAL's and the snapshot writer's filesystem calls;
	// nil means the real OS. A *fault.Injector here (cmd/corrd's
	// -fault-plan) turns the daemon into its own chaos harness: disk
	// faults are injected by plan, and POST /v1/fault swaps the plan
	// live.
	FS fault.FS

	// IngestQueueMax bounds the commit pipeline's queue (jobs waiting
	// for the committer). Past it, HTTP ingest sheds with 429 +
	// Retry-After and the stream transport nacks AckBusy — backpressure
	// instead of unbounded memory growth when offered load outruns the
	// fsync budget. 0 means unbounded (the historical behavior).
	IngestQueueMax int

	// PushTo switches the server into the site role: the base URL of
	// the coordinator to push merged summary images to. The site role
	// pushes the default tenant's summary only; keyed tenants are a
	// coordinator-side namespace (see tenant.go).
	PushTo string
	// PushInterval defaults to 5s when PushTo is set.
	PushInterval time.Duration

	// PrimaryAddr switches the server into the replica role: the stream
	// listener address (host:port) of the primary whose WAL this server
	// follows. A replica serves reads and rejects writes with 503
	// (AckReadOnly on the stream) until promoted — see replication.go.
	// Incompatible with PushTo. WALDir, when also set, stays closed
	// until promotion: the promoted server opens its own log there,
	// continuing the primary's LSN space.
	PrimaryAddr string
	// PrimaryTimeout, when positive, is how long the replica tolerates
	// total primary silence (no frame, no successful redial) before
	// promoting itself automatically. 0 disables auto-failover: the
	// follower retries forever and promotion is manual (/v1/promote).
	PrimaryTimeout time.Duration
	// HeartbeatInterval is the primary→replica heartbeat cadence on
	// replication connections this server serves; <= 0 means 1s.
	HeartbeatInterval time.Duration
	// AdminToken gates POST /v1/promote (header X-Admin-Token). Empty
	// disables the endpoint entirely — an unauthenticated promote would
	// let anyone split-brain the pair. Auto-failover (PrimaryTimeout)
	// does not need it.
	AdminToken string

	// MaxTenants caps how many keyed namespaces the daemon will hold
	// (the default tenant counts); ingest or push naming a new tenant
	// past the cap is rejected with HTTP 429 (AckTenant on the stream).
	// 0 means unlimited.
	MaxTenants int
	// MaxTenantBytes caps the summed per-tenant memory footprint
	// (sampled at commit and spill time); creating a tenant past it is
	// rejected with HTTP 413. 0 means unlimited.
	MaxTenantBytes int64
	// TenantIdleSpill, when positive, spills tenants untouched for at
	// least that long: the engine is marshaled to an in-memory image
	// and parked on the cross-tenant free list, and the next touch
	// restores it bit-identically. 0 disables idle spill.
	TenantIdleSpill time.Duration

	// MaxBodyBytes caps request bodies; 0 means 64 MiB.
	MaxBodyBytes int64
	// Logger receives operational messages (snapshot failures, push
	// retries); nil discards them.
	Logger *log.Logger
	// AccessLog receives one JSON line per API request and per stream
	// frame batch (method, path, tenant, status, bytes, duration,
	// request ID). Records pass through a fixed-size ring drained by a
	// background writer: the serving path never blocks on the log
	// destination, and bursts past the ring are dropped and counted
	// (corrd_access_log_dropped_total) instead of queued. nil disables
	// access logging.
	AccessLog io.Writer
	// SlowRequest, when positive, promotes every request at least this
	// slow to Logger (and counts it in corrd_slow_requests_total);
	// 0 disables the threshold.
	SlowRequest time.Duration
}

func (c *Config) role() string {
	if c.PrimaryAddr != "" {
		return "replica"
	}
	if c.PushTo != "" {
		return "site"
	}
	return "coordinator"
}

// walFsync normalizes the WALFsync field.
func (c *Config) walFsync() string {
	if c.WALFsync == "" {
		return "always"
	}
	return c.WALFsync
}

// aggregate normalizes the Aggregate field.
func (c *Config) aggregate() string {
	if c.Aggregate == "" {
		return "f2"
	}
	return c.Aggregate
}

// newEngine builds the sharded engine for the configured aggregate.
func newEngine(cfg *Config) (Engine, error) {
	shards := cfg.Shards
	if shards < 1 {
		shards = 1
	}
	var opts []shard.Option
	if cfg.BatchSize > 0 {
		opts = append(opts, shard.WithBatchSize(cfg.BatchSize))
	}
	switch cfg.aggregate() {
	case "f2":
		return shard.NewF2(cfg.Options, shards, opts...)
	case "fk":
		return shard.NewFk(cfg.K, cfg.Options, shards, opts...)
	case "count":
		return shard.NewCount(cfg.Options, shards, opts...)
	case "sum":
		return shard.NewSum(cfg.Options, shards, opts...)
	default:
		return nil, fmt.Errorf("service: unknown aggregate %q (want f2, fk, count, or sum)", cfg.Aggregate)
	}
}

// decodeState is one pooled set of ingest scratch buffers: the raw
// body (or stream frame payload), the decoded tuple batch, and the
// commit-pipeline job (whose done channel is reused), recycled across
// requests so the steady-state ingest path does not allocate per
// request. The HTTP handlers and the stream readers share one pool —
// the same buffers serve both transports (the PR's pooling audit).
type decodeState struct {
	body      []byte
	tuples    []correlated.Tuple
	streamSeq uint64 // stream transport only: the frame's client seq
	job       ingestJob
}

// Server is one corrd instance. Create it with New, serve its Handler,
// and Close it to flush, final-push, and final-snapshot.
type Server struct {
	cfg     Config
	metrics *metrics
	mux     *http.ServeMux
	logger  *log.Logger
	access  *accessLog // nil without Config.AccessLog

	// mu is the engine driver lock: the shard engines are single-driver
	// by contract, so every engine mutation — a commit group applied by
	// the committer, a push merge, a snapshot marshal, a tenant spill
	// or restore — happens under it, across all tenants. Ingest
	// handlers never take it themselves: they queue into the commit
	// pipeline (pipe) and the committer goroutine commits whole groups
	// under one critical section (see pipeline.go). WAL appends happen
	// in the same critical section as their engine apply, so log order
	// always equals apply order (what makes replay crash-exact).
	// Queries do not take mu either, except to rebuild a tenant's
	// epoch cache (tenant.go) when that tenant's state has moved.
	mu       sync.Mutex
	restored bool

	// Tenant registry (tenant.go): def is the default (empty-key)
	// tenant, whose engine never spills; tenants maps every key
	// (including "") to its namespace; engFree parks reset engines for
	// cross-tenant reuse. regMu is the innermost lock — never acquire
	// mu or a tenant's queryMu while holding it.
	regMu       sync.RWMutex
	tenants     map[string]*tenant
	def         *tenant
	engFree     []Engine
	tenantBytes atomic.Int64 // footprint sample for the MaxTenantBytes cap

	// pipe, committer state: ingest group commit (pipeline.go).
	pipe       commitPipeline
	groupMax   int
	groupBuf   []byte    // committer-owned WAL group encode scratch
	touchedBuf []*tenant // committer-owned touched-tenant scratch

	// fs routes WAL and snapshot filesystem calls (fault.OS() unless
	// Config.FS injects faults); health is the degraded-mode state
	// machine (health.go); groupLatency is the EWMA of commit-group
	// wall time, the Retry-After input for overload shedding.
	fs           fault.FS
	health       health
	groupLatency fgauge

	// wal is the durable-ingest log (nil without Config.WALDir);
	// walReplayed counts state records replayed at the last startup.
	// walSyncAlways mirrors the parsed fsync policy so the commit
	// pipeline knows whether acks need an explicit group fsync.
	// snapFellBack records that startup restored an older retention
	// slot (the newest snapshot was corrupt), which relaxes the replay
	// checkpoint-staleness check in favor of the LSN-continuity check.
	wal           *wal.WAL
	walReplayed   uint64
	walSyncAlways bool
	snapFellBack  bool

	// xferMu serializes whole state transfers — a snapshot, or a full
	// delta-push round (marshal, reset, ship, snapshot-after-ack) — so
	// the snapshot ticker can never persist the transient empty state
	// between a push's Reset and its outcome, and a crash after an
	// acknowledged push restores post-push state instead of re-pushing
	// it. It is taken before mu and never while holding mu.
	xferMu sync.Mutex

	dec   sync.Pool // *decodeState
	pushc *client.Client

	// streamMu guards the streaming-ingest transport's registries
	// (stream.go): the listeners ServeStream runs on and the live
	// connections, so Close can stop accepts and expire reads exactly
	// once per conn without racing registration.
	streamMu    sync.Mutex
	streamLns   []net.Listener
	streamConns map[net.Conn]struct{}

	// Replication (replication.go). replicaMode is true from a replica
	// New until Promote flips it; writes are rejected while it holds.
	// appliedLSN is the highest WAL record applied from the primary
	// (advanced inside the driver-lock critical section of each apply,
	// so snapshots record a consistent coverage); primaryLSN is the
	// primary's last observed frontier; caughtUpAt stamps (unix nanos)
	// the last moment applied covered primary, for the lag-seconds
	// gauge. replState is the live-apply scratch, guarded by mu.
	replicaMode atomic.Bool
	appliedLSN  atomic.Uint64
	primaryLSN  atomic.Uint64
	caughtUpAt  atomic.Int64
	follower    *replica.Follower
	promoteMu   sync.Mutex
	replState   *replayState

	done     chan struct{}
	wg       sync.WaitGroup
	closing  atomic.Bool
	closeMu  sync.Mutex
	closed   bool
	closeErr error
}

// New builds a Server: engine, snapshot restore (if configured), HTTP
// routes, and the background snapshot/push loops. On error nothing is
// left running.
func New(cfg Config) (*Server, error) {
	if cfg.SnapshotInterval <= 0 {
		cfg.SnapshotInterval = 30 * time.Second
	}
	if cfg.PushInterval <= 0 {
		cfg.PushInterval = 5 * time.Second
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 64 << 20
	}
	if cfg.IngestGroupMax <= 0 {
		cfg.IngestGroupMax = defaultGroupMax
	}
	if cfg.SnapshotKeep <= 0 {
		cfg.SnapshotKeep = 2
	}
	if cfg.FS == nil {
		cfg.FS = fault.OS()
	}
	if cfg.PrimaryAddr != "" && cfg.PushTo != "" {
		return nil, errors.New("service: PrimaryAddr and PushTo are incompatible (a replica cannot also be a push site)")
	}
	eng, err := newEngine(&cfg)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:      cfg,
		metrics:  newMetrics(),
		logger:   cfg.Logger,
		groupMax: cfg.IngestGroupMax,
		fs:       cfg.FS,
		done:     make(chan struct{}),
	}
	s.def = &tenant{eng: eng}
	s.def.touch()
	s.tenants = map[string]*tenant{"": s.def}
	if s.logger == nil {
		s.logger = log.New(io.Discard, "", 0)
	}
	s.pipe.cond = sync.NewCond(&s.pipe.mu)
	s.dec.New = func() any { return &decodeState{job: ingestJob{done: make(chan struct{}, 1)}} }
	s.replicaMode.Store(cfg.PrimaryAddr != "")
	// A replica has no log of its own until promotion: its WALDir stays
	// closed so the promoted server can open a fresh log there that
	// continues the primary's LSN space.
	if cfg.WALDir != "" && cfg.PrimaryAddr == "" {
		if err := s.openWAL(); err != nil {
			eng.Close()
			return nil, err
		}
	}
	// Recovery order: restore the snapshot (which records the LSN it
	// covers), then replay the WAL suffix past it — the state that
	// comes out is the same sequence of engine calls the crashed
	// process made. A replica restores the snapshot only and re-follows
	// the primary from its covered LSN.
	var covered uint64
	if cfg.SnapshotPath != "" {
		var err error
		if covered, err = s.restoreSnapshot(); err != nil {
			s.shutdownStorage()
			s.closeEngines()
			return nil, err
		}
	}
	if cfg.PrimaryAddr != "" {
		s.appliedLSN.Store(covered)
	}
	if s.wal != nil {
		if err := s.replayWAL(covered); err != nil {
			s.shutdownStorage()
			s.closeEngines()
			return nil, err
		}
	}
	s.recomputeFootprint()
	s.routes()
	// Started after recovery so the construction error paths above never
	// leak the writer goroutine.
	if cfg.AccessLog != nil {
		s.access = newAccessLog(cfg.AccessLog, accessLogRing, &s.metrics.accessDropped)
	}
	walDesc := "off"
	if cfg.WALDir != "" {
		walDesc = fmt.Sprintf("%s (fsync=%s)", cfg.WALDir, cfg.walFsync())
	}
	s.logf("configured: role=%s agg=%s shards=%d group-max=%d snapshot=%q wal=%s access-log=%t slow-request=%s",
		cfg.role(), cfg.aggregate(), cfg.Shards, s.groupMax, cfg.SnapshotPath, walDesc,
		s.access != nil, cfg.SlowRequest)
	s.wg.Add(1)
	go s.committer()
	s.wg.Add(1)
	go s.recoveryLoop()
	if cfg.SnapshotPath != "" {
		s.wg.Add(1)
		go s.snapshotLoop(cfg.SnapshotInterval)
	}
	if cfg.PushTo != "" {
		s.pushc = client.New(cfg.PushTo)
		s.wg.Add(1)
		go s.pushLoop(cfg.PushInterval)
	}
	if cfg.TenantIdleSpill > 0 {
		s.wg.Add(1)
		go s.spillLoop(cfg.TenantIdleSpill)
	}
	if cfg.PrimaryAddr != "" {
		s.startFollower()
	}
	return s, nil
}

// Handler returns the server's HTTP handler (mount it on any listener —
// http.Server, httptest, a mux of your own).
func (s *Server) Handler() http.Handler { return s.mux }

// Restored reports whether startup state came from a snapshot.
func (s *Server) Restored() bool { return s.restored }

// Engine exposes the default tenant's engine for in-process use
// (examples, tests). Serialize access with the same care as any shard
// engine; the server's handlers take their own lock.
func (s *Server) Engine() Engine { return s.def.eng }

func (s *Server) logf(format string, args ...any) { s.logger.Printf("corrd: "+format, args...) }

// shutdownStorage closes the WAL (used on construction failures and at
// the tail of Close).
func (s *Server) shutdownStorage() {
	if s.wal != nil {
		if err := s.wal.Close(); err != nil {
			s.logf("wal close: %v", err)
		}
	}
}

// closeEngines closes every live tenant engine and the free list (used
// on construction failures and at the tail of Close).
func (s *Server) closeEngines() []error {
	var errs []error
	s.mu.Lock()
	for _, t := range s.tenantList() {
		if t.eng == nil {
			continue
		}
		if err := t.eng.Close(); err != nil {
			errs = append(errs, fmt.Errorf("tenant %q: %w", t.name, err))
		}
		t.eng = nil
	}
	s.mu.Unlock()
	s.regMu.Lock()
	free := s.engFree
	s.engFree = nil
	s.regMu.Unlock()
	for _, e := range free {
		if err := e.Close(); err != nil {
			errs = append(errs, err)
		}
	}
	return errs
}

// Close shuts the server down gracefully: stop the background loops,
// push any remaining local state upstream (site role), write a final
// snapshot, and close the engine (which flushes its workers). Safe to
// call more than once; later calls return the first result. Callers
// should stop their http.Server first so no handler is mid-flight.
func (s *Server) Close() error {
	s.closeMu.Lock()
	defer s.closeMu.Unlock()
	if s.closed {
		return s.closeErr
	}
	s.closed = true
	s.closing.Store(true)
	s.logf("close: draining stream connections and the ingest pipeline")
	close(s.done)
	// Replication first: fence out any in-flight promotion (closing is
	// set, so attempts after this lock cycle refuse), then detach from
	// the primary so no record applies while the engines drain.
	s.promoteMu.Lock()
	s.promoteMu.Unlock() //nolint:staticcheck // empty critical section is the fence
	if s.follower != nil {
		s.follower.Stop()
	}
	// Stream transport first: stop accepting connections and expire the
	// live readers so they enqueue nothing new after the pipeline closes
	// below — their in-flight frames still commit and ack before each
	// conn's goroutines (tracked in wg) exit.
	s.closeStreams()
	// New ingest is refused from here; the committer drains and commits
	// what is already queued before it exits, so nothing accepted into
	// the pipeline goes unacknowledged.
	s.closePipeline()
	s.wg.Wait()
	var errs []error
	if s.pushc != nil {
		if err := s.pushOnce(); err != nil {
			errs = append(errs, fmt.Errorf("final push: %w", err))
		}
	}
	s.mu.Lock()
	for _, t := range s.tenantList() {
		if t.eng == nil {
			continue // spilled: already flushed and marshaled
		}
		if err := t.eng.Flush(); err != nil {
			errs = append(errs, fmt.Errorf("tenant %q flush: %w", t.name, err))
		}
	}
	s.mu.Unlock()
	if err := s.Snapshot(); err != nil {
		errs = append(errs, err)
	}
	errs = append(errs, s.closeEngines()...)
	if s.wal != nil {
		if err := s.wal.Close(); err != nil {
			errs = append(errs, err)
		}
	}
	// Last: the handlers are done (callers stop their http.Server first,
	// and the stream conns drained above), so the final flush captures
	// every record.
	if s.access != nil {
		s.access.Close()
	}
	s.closeErr = errors.Join(errs...)
	if s.closeErr == nil {
		s.logf("close: complete")
	} else {
		s.logf("close: complete with errors: %v", s.closeErr)
	}
	return s.closeErr
}

// pushLoop ships local state upstream on every tick until Close.
func (s *Server) pushLoop(interval time.Duration) {
	defer s.wg.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if err := s.pushOnce(); err != nil {
				s.logf("push to %s: %v", s.cfg.PushTo, err)
			}
		case <-s.done:
			return
		}
	}
}

// pushOnce implements one round of the site's delta-push protocol:
// marshal the merged local summary, reset the engine, ship the image.
// If the coordinator is unreachable the image is folded back into the
// local engine — nothing is lost locally, and the next tick pushes the
// union. The whole round holds the transfer lock, so a concurrent
// snapshot can neither persist the empty state while the image is in
// flight nor persist pre-push state after the coordinator has
// acknowledged it: a fresh snapshot is written (when configured) under
// the same lock right after the ack.
//
// With a WAL the round is journaled too: a RecordReset carrying the
// in-flight image is appended in the same critical section as the
// Reset, a failed ship logs one RecordFoldback (merge + round close in
// a single record), and a successful ship logs a RecordPushAck before
// the post-push snapshot — after which a crashed site replays to the
// post-push state and never re-sends the image. The one remaining
// ambiguous window is a crash after the coordinator received the image
// but before the ack record (or, without a WAL, the post-push
// snapshot) lands — a restart re-pushes, so delivery is at-least-once;
// exactly-once across site crashes needs coordinator-side dedup.
func (s *Server) pushOnce() error {
	s.xferMu.Lock()
	defer s.xferMu.Unlock()
	def := s.def
	s.mu.Lock()
	n, err := def.eng.Count()
	if err == nil && n == 0 {
		s.mu.Unlock()
		return nil // nothing accumulated since the last push
	}
	var img []byte
	if err == nil {
		img, err = def.eng.MarshalMerged()
	}
	if err == nil {
		err = def.eng.Reset()
	}
	if err == nil {
		if err = s.logReset(img); err != nil {
			// The engine is already reset but the round never reached
			// the log: fold the image straight back so the live state
			// keeps the data, and ship nothing this tick. The WAL sees
			// neither a reset nor a merge — consistent, since the two
			// cancel out.
			if mergeErr := def.eng.MergeMarshaled(img); mergeErr != nil {
				err = errors.Join(err, fmt.Errorf("fold back after failed reset log, %d tuples dropped: %w", n, mergeErr))
			}
		}
		def.epoch.Add(1) // the engine was reset (and possibly refilled)
	}
	s.mu.Unlock()
	if err != nil {
		return err
	}
	if err := s.pushc.Push(context.Background(), img); err != nil {
		s.metrics.pushSendErrors.Inc()
		s.mu.Lock()
		mergeErr := def.eng.MergeMarshaled(img)
		if mergeErr == nil {
			// One record carries the merge and closes the round; if the
			// append fails the round stays open and replay's end-of-log
			// fold-back reconstructs the same state.
			if walErr := s.logFoldback(img); walErr != nil {
				s.logf("wal: log fold-back: %v", walErr)
			}
			def.epoch.Add(1)
		}
		s.mu.Unlock()
		if mergeErr != nil {
			return errors.Join(err, fmt.Errorf("re-queue failed, %d tuples dropped: %w", n, mergeErr))
		}
		return fmt.Errorf("re-queued locally: %w", err)
	}
	s.metrics.pushesSent.Inc()
	s.mu.Lock()
	if walErr := s.logPushAck(); walErr != nil {
		s.logf("wal: log push ack: %v", walErr)
	}
	s.mu.Unlock()
	if err := s.snapshotLocked(); err != nil {
		s.logf("post-push snapshot: %v", err)
	}
	return nil
}
