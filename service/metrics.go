package service

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync/atomic"
	"time"

	"github.com/streamagg/correlated/internal/wal"
)

// Dependency-free Prometheus-text observability. The instrument set is
// fixed at startup (no dynamic label cardinality): counters for the
// three traffic classes, one latency histogram per handler, and gauges
// for engine and snapshot state. Everything is atomics — recording on
// the hot path takes no lock — and the /metrics handler renders the
// text exposition format directly.

// counter is a monotonically increasing metric.
type counter struct{ v atomic.Uint64 }

func (c *counter) Inc()         { c.v.Add(1) }
func (c *counter) Add(n uint64) { c.v.Add(n) }
func (c *counter) Load() uint64 { return c.v.Load() }

// gauge is a settable instantaneous value; Add covers up/down counts
// like live connections.
type gauge struct{ v atomic.Int64 }

func (g *gauge) Set(n int64) { g.v.Store(n) }
func (g *gauge) Add(d int64) { g.v.Add(d) }
func (g *gauge) Load() int64 { return g.v.Load() }

// fgauge is a float-valued gauge (bit-stored for atomicity).
type fgauge struct{ bits atomic.Uint64 }

func (g *fgauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }
func (g *fgauge) Load() float64 { return math.Float64frombits(g.bits.Load()) }

// histogram is a fixed-bucket latency histogram (cumulative on render,
// like Prometheus expects; per-bucket on record, so Observe is one
// atomic add).
type histogram struct {
	bounds  []float64 // upper bounds, ascending; +Inf is implicit
	counts  []atomic.Uint64
	sumBits atomic.Uint64 // float64 bits, CAS-updated
	count   atomic.Uint64
}

func newHistogram(bounds []float64) *histogram {
	return &histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// defaultBuckets spans sub-millisecond handler hits through multi-second
// merges of large pushed images.
func defaultBuckets() []float64 {
	return []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5}
}

func (h *histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// metrics is the service's instrument registry.
type metrics struct {
	start time.Time

	tuplesIngested counter
	ingestRequests counter
	ingestErrors   counter

	// Group commit: groups committed and the requests they carried —
	// requests/groups is the live amortization factor (how many acks
	// each fsync + engine drain bought).
	ingestGroups       counter
	ingestGroupMembers counter

	// Epoch cache: queries served without a merge vs rebuilds paid.
	queryCacheHits     counter
	queryCacheRebuilds counter

	// Streaming ingest (the -stream-addr transport): live and lifetime
	// connections, frames decoded and enqueued, tuples they carried,
	// and frames rejected (bad hello, protocol desync, bad payload).
	streamConns       gauge
	streamConnsTotal  counter
	streamFrames      counter
	streamTuples      counter
	streamFrameErrors counter

	pushesMerged counter
	pushErrors   counter

	queriesLE   counter
	queriesGE   counter
	queryErrors counter

	snapshotsWritten counter
	snapshotErrors   counter
	lastSnapshotUnix gauge // 0 until the first snapshot
	snapshotBytes    gauge

	pushesSent     counter // site role: images shipped upstream
	pushSendErrors counter

	walAppendErrors  counter    // appends that failed after the engine applied
	walFsync         *histogram // fsync latency on the append/checkpoint path
	walReplayRecords gauge      // state records replayed at the last startup
	walReplaySeconds fgauge     // wall-clock duration of that replay

	// Multi-tenant registry (tenant.go): namespace lifecycle and the
	// governance caps' rejection counts.
	tenantsCreated       counter
	tenantsSpilled       counter
	tenantsRestored      counter
	tenantRejectedLimit  counter // creations refused by MaxTenants (429)
	tenantRejectedMemory counter // creations refused by MaxTenantBytes (413)
	tenantEnginesReused  counter // engines taken from the cross-tenant free list
	tenantBytes          gauge   // sampled summed per-tenant footprint

	handlers map[string]*histogram // request duration per handler
}

// walFsyncBuckets spans an SSD's sub-100µs fsync through a saturated
// spinning disk's hundreds of milliseconds.
func walFsyncBuckets() []float64 {
	return []float64{0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25}
}

func newMetrics() *metrics {
	m := &metrics{start: time.Now(), handlers: map[string]*histogram{}}
	for _, h := range handlerNames {
		m.handlers[h] = newHistogram(defaultBuckets())
	}
	m.walFsync = newHistogram(walFsyncBuckets())
	return m
}

// handlerNames fixes the exposition order of the per-handler histograms.
var handlerNames = []string{"ingest", "push", "query", "stats", "summary"}

func (m *metrics) observe(handler string, d time.Duration) {
	if h, ok := m.handlers[handler]; ok {
		h.Observe(d.Seconds())
	}
}

// engineStats is the engine-derived part of the exposition, gathered
// under the server's lock just before rendering. It describes the
// default tenant's engine (the single-tenant shape, unchanged).
type engineStats struct {
	count  uint64
	space  int64
	shards int
}

// tenantStats is the registry-derived part of the exposition.
type tenantStats struct {
	total int   // tenants registered (default included)
	live  int   // tenants with a materialized engine
	bytes int64 // sampled summed footprint
}

// writeHistogram renders one histogram series, optionally with a fixed
// label pair (e.g. `handler="ingest"`) merged into every sample.
func writeHistogram(w io.Writer, name, labels string, h *histogram) {
	bucketOpen, plain := "{", ""
	if labels != "" {
		bucketOpen = "{" + labels + ","
		plain = "{" + labels + "}"
	}
	var cum uint64
	for i, ub := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket%sle=%q} %d\n", name, bucketOpen, formatBound(ub), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket%sle=\"+Inf\"} %d\n", name, bucketOpen, cum)
	fmt.Fprintf(w, "%s_sum%s %g\n", name, plain, math.Float64frombits(h.sumBits.Load()))
	fmt.Fprintf(w, "%s_count%s %d\n", name, plain, h.count.Load())
}

// write renders the Prometheus text exposition format. ws is nil when
// the server runs without a WAL.
func (m *metrics) write(w io.Writer, es engineStats, ts tenantStats, ws *wal.Stats) {
	c := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	g := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	c("corrd_tuples_ingested_total", "Tuples accepted through /v1/ingest.", m.tuplesIngested.Load())
	c("corrd_ingest_requests_total", "Requests to /v1/ingest.", m.ingestRequests.Load())
	c("corrd_ingest_errors_total", "Rejected /v1/ingest requests.", m.ingestErrors.Load())
	c("corrd_ingest_groups_total", "Commit groups applied (each pays one engine drain and, with a WAL, one fsync).", m.ingestGroups.Load())
	c("corrd_ingest_group_requests_total", "Ingest requests carried by commit groups (divide by groups for the amortization factor).", m.ingestGroupMembers.Load())
	c("corrd_query_cache_hits_total", "Queries served from the epoch cache without a shard merge.", m.queryCacheHits.Load())
	c("corrd_query_cache_rebuilds_total", "Epoch-cache rebuilds (one barrier + shard merge each).", m.queryCacheRebuilds.Load())
	g("corrd_stream_conns", "Live streaming-ingest connections.", m.streamConns.Load())
	c("corrd_stream_conns_total", "Streaming-ingest connections accepted.", m.streamConnsTotal.Load())
	c("corrd_stream_frames_total", "Stream frames decoded and committed through the ingest pipeline.", m.streamFrames.Load())
	c("corrd_stream_tuples_total", "Tuples accepted over the streaming transport.", m.streamTuples.Load())
	c("corrd_stream_frame_errors_total", "Stream frames rejected (bad hello, desync, malformed payload).", m.streamFrameErrors.Load())
	c("corrd_pushes_merged_total", "Site summary images merged through /v1/push.", m.pushesMerged.Load())
	c("corrd_push_errors_total", "Rejected /v1/push requests.", m.pushErrors.Load())
	fmt.Fprintf(w, "# HELP corrd_queries_served_total Queries answered, by direction.\n")
	fmt.Fprintf(w, "# TYPE corrd_queries_served_total counter\n")
	fmt.Fprintf(w, "corrd_queries_served_total{op=\"le\"} %d\n", m.queriesLE.Load())
	fmt.Fprintf(w, "corrd_queries_served_total{op=\"ge\"} %d\n", m.queriesGE.Load())
	c("corrd_query_errors_total", "Failed /v1/query requests.", m.queryErrors.Load())
	c("corrd_snapshots_written_total", "Snapshots persisted to disk.", m.snapshotsWritten.Load())
	c("corrd_snapshot_errors_total", "Failed snapshot attempts.", m.snapshotErrors.Load())
	g("corrd_snapshot_last_unix_seconds", "Unix time of the last successful snapshot (0 = never).", m.lastSnapshotUnix.Load())
	if last := m.lastSnapshotUnix.Load(); last > 0 {
		g("corrd_snapshot_age_seconds", "Seconds since the last successful snapshot.",
			int64(time.Since(time.Unix(last, 0)).Seconds()))
	}
	g("corrd_snapshot_bytes", "Size of the last written snapshot.", m.snapshotBytes.Load())
	c("corrd_site_pushes_sent_total", "Images this site pushed upstream.", m.pushesSent.Load())
	c("corrd_site_push_send_errors_total", "Failed upstream pushes (re-queued locally).", m.pushSendErrors.Load())
	g("corrd_engine_tuples", "Tuples held by the engine (Count).", int64(es.count))
	g("corrd_engine_space", "Stored counters/tuples across shard summaries (Space).", es.space)
	g("corrd_engine_shards", "Shard workers in the engine.", int64(es.shards))
	g("corrd_uptime_seconds", "Seconds since the server was created.", int64(time.Since(m.start).Seconds()))
	g("corrd_tenants", "Keyed namespaces registered (the default tenant included).", int64(ts.total))
	g("corrd_tenants_live", "Tenants with a materialized engine (the rest are spilled images).", int64(ts.live))
	g("corrd_tenant_bytes", "Sampled summed per-tenant footprint (the MaxTenantBytes input).", ts.bytes)
	c("corrd_tenant_created_total", "Tenants created over this process's lifetime.", m.tenantsCreated.Load())
	c("corrd_tenant_spills_total", "Idle tenants spilled to an in-memory image.", m.tenantsSpilled.Load())
	c("corrd_tenant_restores_total", "Spilled tenants materialized back on touch.", m.tenantsRestored.Load())
	fmt.Fprintf(w, "# HELP corrd_tenant_rejected_total Tenant creations refused by a governance cap, by reason.\n")
	fmt.Fprintf(w, "# TYPE corrd_tenant_rejected_total counter\n")
	fmt.Fprintf(w, "corrd_tenant_rejected_total{reason=\"limit\"} %d\n", m.tenantRejectedLimit.Load())
	fmt.Fprintf(w, "corrd_tenant_rejected_total{reason=\"memory\"} %d\n", m.tenantRejectedMemory.Load())
	c("corrd_tenant_engines_reused_total", "Tenant engines taken warm from the cross-tenant free list.", m.tenantEnginesReused.Load())

	if ws != nil {
		g("corrd_wal_segments", "WAL segment files on disk.", ws.Segments)
		c("corrd_wal_appends_total", "Records appended to the WAL this process.", ws.Appends)
		c("corrd_wal_appended_bytes_total", "Frame bytes appended to the WAL this process.", ws.AppendedBytes)
		c("corrd_wal_fsyncs_total", "Fsyncs issued on the WAL append/checkpoint path.", ws.Fsyncs)
		c("corrd_wal_sync_errors_total", "Failed fsyncs in the WAL's background interval loop.", ws.SyncErrors)
		c("corrd_wal_checkpoints_total", "Checkpoint markers written after snapshots.", ws.Checkpoints)
		c("corrd_wal_pruned_segments_total", "Sealed WAL segments deleted by checkpoints.", ws.PrunedSegments)
		g("corrd_wal_last_lsn", "LSN of the most recently appended WAL record.", int64(ws.LastLSN))
		c("corrd_wal_append_errors_total", "WAL appends that failed after the engine applied the batch.", m.walAppendErrors.Load())
		g("corrd_wal_replay_records", "State records replayed from the WAL at the last startup.", m.walReplayRecords.Load())
		fmt.Fprintf(w, "# HELP corrd_wal_replay_duration_seconds Wall-clock duration of the startup WAL replay.\n")
		fmt.Fprintf(w, "# TYPE corrd_wal_replay_duration_seconds gauge\n")
		fmt.Fprintf(w, "corrd_wal_replay_duration_seconds %g\n", m.walReplaySeconds.Load())
		fmt.Fprintf(w, "# HELP corrd_wal_fsync_duration_seconds WAL fsync latency on the ack path.\n")
		fmt.Fprintf(w, "# TYPE corrd_wal_fsync_duration_seconds histogram\n")
		writeHistogram(w, "corrd_wal_fsync_duration_seconds", "", m.walFsync)
	}

	fmt.Fprintf(w, "# HELP corrd_http_request_duration_seconds Request latency by handler.\n")
	fmt.Fprintf(w, "# TYPE corrd_http_request_duration_seconds histogram\n")
	for _, name := range handlerNames {
		writeHistogram(w, "corrd_http_request_duration_seconds", fmt.Sprintf("handler=%q", name), m.handlers[name])
	}
}

func formatBound(b float64) string { return fmt.Sprintf("%g", b) }
