package service

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"sync/atomic"
	"time"

	"github.com/streamagg/correlated/internal/wal"
)

// Dependency-free Prometheus-text observability. The instrument set is
// fixed at startup (no dynamic label cardinality): counters for the
// three traffic classes, one latency histogram per handler, and gauges
// for engine and snapshot state. Everything is atomics — recording on
// the hot path takes no lock — and the /metrics handler renders the
// text exposition format directly.

// counter is a monotonically increasing metric.
type counter struct{ v atomic.Uint64 }

func (c *counter) Inc()         { c.v.Add(1) }
func (c *counter) Add(n uint64) { c.v.Add(n) }
func (c *counter) Load() uint64 { return c.v.Load() }

// gauge is a settable instantaneous value; Add covers up/down counts
// like live connections.
type gauge struct{ v atomic.Int64 }

func (g *gauge) Set(n int64) { g.v.Store(n) }
func (g *gauge) Add(d int64) { g.v.Add(d) }
func (g *gauge) Load() int64 { return g.v.Load() }

// fgauge is a float-valued gauge (bit-stored for atomicity).
type fgauge struct{ bits atomic.Uint64 }

func (g *fgauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }
func (g *fgauge) Load() float64 { return math.Float64frombits(g.bits.Load()) }

// histogram is a fixed-bucket latency histogram (cumulative on render,
// like Prometheus expects; per-bucket on record, so Observe is a few
// atomic adds). The observed sum is kept per bucket in fixed-point
// nanounits: integer adds are wait-free, where the old single-word
// float sum needed a CAS retry loop that spun under contention.
type histogram struct {
	bounds []float64 // upper bounds, ascending; +Inf is implicit
	counts []atomic.Uint64
	sums   []atomic.Uint64 // per-bucket observed sum, nanounits
	count  atomic.Uint64
}

func newHistogram(bounds []float64) *histogram {
	return &histogram{
		bounds: bounds,
		counts: make([]atomic.Uint64, len(bounds)+1),
		sums:   make([]atomic.Uint64, len(bounds)+1),
	}
}

// defaultBuckets spans sub-millisecond handler hits through multi-second
// merges of large pushed images.
func defaultBuckets() []float64 {
	return []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5}
}

// nanounits converts a non-negative observation to 1e-9 fixed point.
// At that resolution a uint64 bucket sum holds ~584 years of
// seconds-valued observations before wrapping.
func nanounits(v float64) uint64 { return uint64(v*1e9 + 0.5) }

func (h *histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.sums[i].Add(nanounits(v))
	h.count.Add(1)
}

// sum totals the per-bucket fixed-point sums back into the observed
// unit.
func (h *histogram) sum() float64 {
	var total uint64
	for i := range h.sums {
		total += h.sums[i].Load()
	}
	return float64(total) / 1e9
}

// quantile approximates the q-th quantile (0 < q <= 1) by linear
// interpolation inside the bucket holding the rank; mass beyond the
// last bound reports the last bound. Bucket counts are read racily
// against concurrent observers, which is fine for an estimate.
func (h *histogram) quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum, lower float64
	for i, ub := range h.bounds {
		n := float64(h.counts[i].Load())
		if n > 0 && cum+n >= rank {
			return lower + (ub-lower)*(rank-cum)/n
		}
		cum += n
		lower = ub
	}
	return lower
}

// metrics is the service's instrument registry.
type metrics struct {
	start time.Time

	tuplesIngested counter
	ingestRequests counter
	ingestErrors   counter

	// Group commit: groups committed and the requests they carried —
	// requests/groups is the live amortization factor (how many acks
	// each fsync + engine drain bought).
	ingestGroups       counter
	ingestGroupMembers counter

	// Epoch cache: queries served without a merge vs rebuilds paid.
	queryCacheHits     counter
	queryCacheRebuilds counter

	// Streaming ingest (the -stream-addr transport): live and lifetime
	// connections, frames decoded and enqueued, tuples they carried,
	// and frames rejected (bad hello, protocol desync, bad payload).
	streamConns       gauge
	streamConnsTotal  counter
	streamFrames      counter
	streamTuples      counter
	streamFrameErrors counter

	pushesMerged counter
	pushErrors   counter

	queriesLE   counter
	queriesGE   counter
	queryErrors counter

	snapshotsWritten counter
	snapshotErrors   counter
	lastSnapshotUnix gauge // 0 until the first snapshot
	snapshotBytes    gauge

	pushesSent     counter // site role: images shipped upstream
	pushSendErrors counter

	walAppendErrors  counter    // appends that failed after the engine applied
	walFsync         *histogram // fsync latency on the append/checkpoint path
	walReplayRecords gauge      // state records replayed at the last startup
	walReplaySeconds fgauge     // wall-clock duration of that replay

	// Multi-tenant registry (tenant.go): namespace lifecycle and the
	// governance caps' rejection counts.
	tenantsCreated       counter
	tenantsSpilled       counter
	tenantsRestored      counter
	tenantRejectedLimit  counter // creations refused by MaxTenants (429)
	tenantRejectedMemory counter // creations refused by MaxTenantBytes (413)
	tenantEnginesReused  counter // engines taken from the cross-tenant free list
	tenantBytes          gauge   // sampled summed per-tenant footprint

	// Pipeline-stage tracing (trace.go): where an acknowledged ingest's
	// time goes — queue wait, engine apply, WAL append, fsync, ack
	// wake — plus the commit-group shape those costs amortize over and
	// the live queue depth ahead of the committer.
	stages      [numStages]*histogram
	groupSize   *histogram // ingest requests per committed group
	groupTuples *histogram // tuples per committed group
	queueDepth  gauge      // jobs waiting in the commit pipeline

	// Replication (replication.go): the primary side counts what it
	// ships to followers; the replica side counts what it applies and
	// its promotions. Lag gauges are sampled at scrape time.
	replicaConns              gauge   // follower connections served right now
	replicaRecordsSent        counter // WAL records shipped to followers
	replicaSnapshotsSent      counter // snapshot re-seeds shipped to followers
	replicaHeartbeatsSent     counter // heartbeats shipped to followers
	replicaRecordsApplied     counter // shipped records applied locally (replica)
	replicaSnapshotsInstalled counter // snapshot re-seeds installed locally (replica)
	replicaPromotions         counter // replica→primary promotions

	// Degraded mode and overload shedding (health.go, pipeline.go):
	// the state machine's position and cumulative degraded time are
	// sampled at scrape; the counters tick at each rejection site.
	healthState     gauge  // 0 healthy, 1 degraded, 2 recovering
	degradedSeconds fgauge // cumulative seconds out of the healthy state
	ingestShed      counter
	degradedRejects counter

	// Access logging (accesslog.go): records dropped because the ring
	// was full (the serving path never blocks on the log destination)
	// and requests promoted to the main logger by -slow-request.
	accessDropped counter
	slowRequests  counter

	buildInfo string // corrd_build_info sample line, computed once

	handlers map[string]*histogram // request duration per handler
}

// walFsyncBuckets spans an SSD's sub-100µs fsync through a saturated
// spinning disk's hundreds of milliseconds.
func walFsyncBuckets() []float64 {
	return []float64{0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25}
}

func newMetrics() *metrics {
	m := &metrics{start: time.Now(), handlers: map[string]*histogram{}}
	for _, h := range handlerNames {
		m.handlers[h] = newHistogram(defaultBuckets())
	}
	m.walFsync = newHistogram(walFsyncBuckets())
	for i := range m.stages {
		m.stages[i] = newHistogram(stageBuckets())
	}
	m.groupSize = newHistogram(groupSizeBuckets())
	m.groupTuples = newHistogram(groupTuplesBuckets())
	m.buildInfo = buildInfoLine()
	return m
}

// handlerNames fixes the exposition order of the per-handler histograms.
var handlerNames = []string{"ingest", "push", "query", "stats", "summary", "promote"}

func (m *metrics) observe(handler string, d time.Duration) {
	if h, ok := m.handlers[handler]; ok {
		h.Observe(d.Seconds())
	}
}

// engineStats is the engine-derived part of the exposition, gathered
// under the server's lock just before rendering. It describes the
// default tenant's engine (the single-tenant shape, unchanged).
type engineStats struct {
	count  uint64
	space  int64
	shards int
}

// tenantStats is the registry-derived part of the exposition.
type tenantStats struct {
	total int   // tenants registered (default included)
	live  int   // tenants with a materialized engine
	bytes int64 // sampled summed footprint
}

// replicationStats is the replication-lag part of the exposition,
// sampled from the server's atomics at scrape time. All zero on a
// server that is not (and never was) a replica.
type replicationStats struct {
	appliedLSN uint64
	primaryLSN uint64
	lagRecords uint64
	lagSeconds float64
}

// writeHistogram renders one histogram series, optionally with a fixed
// label pair (e.g. `handler="ingest"`) merged into every sample.
func writeHistogram(w io.Writer, name, labels string, h *histogram) {
	bucketOpen, plain := "{", ""
	if labels != "" {
		bucketOpen = "{" + labels + ","
		plain = "{" + labels + "}"
	}
	var cum uint64
	for i, ub := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket%sle=%q} %d\n", name, bucketOpen, formatBound(ub), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket%sle=\"+Inf\"} %d\n", name, bucketOpen, cum)
	fmt.Fprintf(w, "%s_sum%s %g\n", name, plain, h.sum())
	fmt.Fprintf(w, "%s_count%s %d\n", name, plain, h.count.Load())
}

// write renders the Prometheus text exposition format. ws is nil when
// the server runs without a WAL.
func (m *metrics) write(w io.Writer, es engineStats, ts tenantStats, ws *wal.Stats, rs replicationStats) {
	c := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	g := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	c("corrd_tuples_ingested_total", "Tuples accepted through /v1/ingest.", m.tuplesIngested.Load())
	c("corrd_ingest_requests_total", "Requests to /v1/ingest.", m.ingestRequests.Load())
	c("corrd_ingest_errors_total", "Rejected /v1/ingest requests.", m.ingestErrors.Load())
	c("corrd_ingest_groups_total", "Commit groups applied (each pays one engine drain and, with a WAL, one fsync).", m.ingestGroups.Load())
	c("corrd_ingest_group_requests_total", "Ingest requests carried by commit groups (divide by groups for the amortization factor).", m.ingestGroupMembers.Load())
	c("corrd_query_cache_hits_total", "Queries served from the epoch cache without a shard merge.", m.queryCacheHits.Load())
	c("corrd_query_cache_rebuilds_total", "Epoch-cache rebuilds (one barrier + shard merge each).", m.queryCacheRebuilds.Load())
	g("corrd_stream_conns", "Live streaming-ingest connections.", m.streamConns.Load())
	c("corrd_stream_conns_total", "Streaming-ingest connections accepted.", m.streamConnsTotal.Load())
	c("corrd_stream_frames_total", "Stream frames decoded and committed through the ingest pipeline.", m.streamFrames.Load())
	c("corrd_stream_tuples_total", "Tuples accepted over the streaming transport.", m.streamTuples.Load())
	c("corrd_stream_frame_errors_total", "Stream frames rejected (bad hello, desync, malformed payload).", m.streamFrameErrors.Load())
	c("corrd_pushes_merged_total", "Site summary images merged through /v1/push.", m.pushesMerged.Load())
	c("corrd_push_errors_total", "Rejected /v1/push requests.", m.pushErrors.Load())
	fmt.Fprintf(w, "# HELP corrd_queries_served_total Queries answered, by direction.\n")
	fmt.Fprintf(w, "# TYPE corrd_queries_served_total counter\n")
	fmt.Fprintf(w, "corrd_queries_served_total{op=\"le\"} %d\n", m.queriesLE.Load())
	fmt.Fprintf(w, "corrd_queries_served_total{op=\"ge\"} %d\n", m.queriesGE.Load())
	c("corrd_query_errors_total", "Failed /v1/query requests.", m.queryErrors.Load())
	c("corrd_snapshots_written_total", "Snapshots persisted to disk.", m.snapshotsWritten.Load())
	c("corrd_snapshot_errors_total", "Failed snapshot attempts.", m.snapshotErrors.Load())
	g("corrd_snapshot_last_unix_seconds", "Unix time of the last successful snapshot (0 = never).", m.lastSnapshotUnix.Load())
	if last := m.lastSnapshotUnix.Load(); last > 0 {
		g("corrd_snapshot_age_seconds", "Seconds since the last successful snapshot.",
			int64(time.Since(time.Unix(last, 0)).Seconds()))
	}
	g("corrd_snapshot_bytes", "Size of the last written snapshot.", m.snapshotBytes.Load())
	c("corrd_site_pushes_sent_total", "Images this site pushed upstream.", m.pushesSent.Load())
	c("corrd_site_push_send_errors_total", "Failed upstream pushes (re-queued locally).", m.pushSendErrors.Load())
	g("corrd_engine_tuples", "Tuples held by the engine (Count).", int64(es.count))
	g("corrd_engine_space", "Stored counters/tuples across shard summaries (Space).", es.space)
	g("corrd_engine_shards", "Shard workers in the engine.", int64(es.shards))
	g("corrd_uptime_seconds", "Seconds since the server was created.", int64(time.Since(m.start).Seconds()))
	g("corrd_tenants", "Keyed namespaces registered (the default tenant included).", int64(ts.total))
	g("corrd_tenants_live", "Tenants with a materialized engine (the rest are spilled images).", int64(ts.live))
	g("corrd_tenant_bytes", "Sampled summed per-tenant footprint (the MaxTenantBytes input).", ts.bytes)
	c("corrd_tenant_created_total", "Tenants created over this process's lifetime.", m.tenantsCreated.Load())
	c("corrd_tenant_spills_total", "Idle tenants spilled to an in-memory image.", m.tenantsSpilled.Load())
	c("corrd_tenant_restores_total", "Spilled tenants materialized back on touch.", m.tenantsRestored.Load())
	fmt.Fprintf(w, "# HELP corrd_tenant_rejected_total Tenant creations refused by a governance cap, by reason.\n")
	fmt.Fprintf(w, "# TYPE corrd_tenant_rejected_total counter\n")
	fmt.Fprintf(w, "corrd_tenant_rejected_total{reason=\"limit\"} %d\n", m.tenantRejectedLimit.Load())
	fmt.Fprintf(w, "corrd_tenant_rejected_total{reason=\"memory\"} %d\n", m.tenantRejectedMemory.Load())
	c("corrd_tenant_engines_reused_total", "Tenant engines taken warm from the cross-tenant free list.", m.tenantEnginesReused.Load())

	// Replication series are emitted unconditionally: a dashboard built
	// against a primary keeps working when the host is redeployed as a
	// replica (and vice versa).
	g("corrd_replica_conns", "Replication follower connections served right now.", m.replicaConns.Load())
	c("corrd_replica_records_sent_total", "WAL records shipped to replication followers.", m.replicaRecordsSent.Load())
	c("corrd_replica_snapshots_sent_total", "Snapshot re-seeds shipped to followers that fell behind the prune horizon.", m.replicaSnapshotsSent.Load())
	c("corrd_replica_heartbeats_sent_total", "Heartbeat frames shipped to replication followers.", m.replicaHeartbeatsSent.Load())
	c("corrd_replica_records_applied_total", "Shipped WAL records this replica applied.", m.replicaRecordsApplied.Load())
	c("corrd_replica_snapshots_installed_total", "Snapshot re-seeds this replica installed.", m.replicaSnapshotsInstalled.Load())
	c("corrd_replica_promotions_total", "Replica-to-primary promotions (manual or on primary loss).", m.replicaPromotions.Load())
	g("corrd_replica_applied_lsn", "Highest primary WAL record applied locally (replica role).", int64(rs.appliedLSN))
	g("corrd_replica_primary_lsn", "The primary's last observed WAL frontier (replica role).", int64(rs.primaryLSN))
	g("corrd_replica_lag_records", "Records the replica is behind the primary's frontier.", int64(rs.lagRecords))
	fmt.Fprintf(w, "# HELP corrd_replica_lag_seconds Seconds since this replica was last caught up with the primary (0 when caught up).\n")
	fmt.Fprintf(w, "# TYPE corrd_replica_lag_seconds gauge\n")
	fmt.Fprintf(w, "corrd_replica_lag_seconds %g\n", rs.lagSeconds)

	if ws != nil {
		g("corrd_wal_segments", "WAL segment files on disk.", ws.Segments)
		c("corrd_wal_appends_total", "Records appended to the WAL this process.", ws.Appends)
		c("corrd_wal_appended_bytes_total", "Frame bytes appended to the WAL this process.", ws.AppendedBytes)
		c("corrd_wal_fsyncs_total", "Fsyncs issued on the WAL append/checkpoint path.", ws.Fsyncs)
		c("corrd_wal_sync_errors_total", "Failed fsyncs in the WAL's background interval loop.", ws.SyncErrors)
		c("corrd_wal_checkpoints_total", "Checkpoint markers written after snapshots.", ws.Checkpoints)
		c("corrd_wal_pruned_segments_total", "Sealed WAL segments deleted by checkpoints.", ws.PrunedSegments)
		g("corrd_wal_last_lsn", "LSN of the most recently appended WAL record.", int64(ws.LastLSN))
		c("corrd_wal_append_errors_total", "WAL appends that failed after the engine applied the batch.", m.walAppendErrors.Load())
		g("corrd_wal_replay_records", "State records replayed from the WAL at the last startup.", m.walReplayRecords.Load())
		fmt.Fprintf(w, "# HELP corrd_wal_replay_duration_seconds Wall-clock duration of the startup WAL replay.\n")
		fmt.Fprintf(w, "# TYPE corrd_wal_replay_duration_seconds gauge\n")
		fmt.Fprintf(w, "corrd_wal_replay_duration_seconds %g\n", m.walReplaySeconds.Load())
		fmt.Fprintf(w, "# HELP corrd_wal_fsync_duration_seconds WAL fsync latency on the ack path.\n")
		fmt.Fprintf(w, "# TYPE corrd_wal_fsync_duration_seconds histogram\n")
		writeHistogram(w, "corrd_wal_fsync_duration_seconds", "", m.walFsync)
	}

	fmt.Fprintf(w, "# HELP corrd_http_request_duration_seconds Request latency by handler.\n")
	fmt.Fprintf(w, "# TYPE corrd_http_request_duration_seconds histogram\n")
	for _, name := range handlerNames {
		writeHistogram(w, "corrd_http_request_duration_seconds", fmt.Sprintf("handler=%q", name), m.handlers[name])
	}

	fmt.Fprintf(w, "# HELP corrd_pipeline_stage_seconds Time ingest jobs spend in each commit-pipeline stage (enqueue, apply, append, fsync, ack).\n")
	fmt.Fprintf(w, "# TYPE corrd_pipeline_stage_seconds histogram\n")
	for i, name := range stageNames {
		writeHistogram(w, "corrd_pipeline_stage_seconds", fmt.Sprintf("stage=%q", name), m.stages[i])
	}
	fmt.Fprintf(w, "# HELP corrd_ingest_group_size Ingest requests carried per committed group.\n")
	fmt.Fprintf(w, "# TYPE corrd_ingest_group_size histogram\n")
	writeHistogram(w, "corrd_ingest_group_size", "", m.groupSize)
	fmt.Fprintf(w, "# HELP corrd_ingest_group_tuples Tuples carried per committed group.\n")
	fmt.Fprintf(w, "# TYPE corrd_ingest_group_tuples histogram\n")
	writeHistogram(w, "corrd_ingest_group_tuples", "", m.groupTuples)
	g("corrd_ingest_queue_depth", "Ingest jobs queued ahead of the committer right now.", m.queueDepth.Load())
	g("corrd_health_state", "Degraded-mode state machine position: 0 healthy, 1 degraded (read-only), 2 recovering.", m.healthState.Load())
	fmt.Fprintf(w, "# HELP corrd_degraded_seconds_total Cumulative seconds spent out of the healthy state (writes refused).\n")
	fmt.Fprintf(w, "# TYPE corrd_degraded_seconds_total counter\n")
	fmt.Fprintf(w, "corrd_degraded_seconds_total %g\n", m.degradedSeconds.Load())
	c("corrd_ingest_shed_total", "Ingest requests shed by the commit-queue bound (HTTP 429, stream AckBusy).", m.ingestShed.Load())
	c("corrd_degraded_rejects_total", "Writes rejected while degraded (HTTP 503, stream AckDegraded).", m.degradedRejects.Load())
	c("corrd_access_log_dropped_total", "Access-log records dropped because the ring was full.", m.accessDropped.Load())
	c("corrd_slow_requests_total", "Requests at or over the slow-request threshold, promoted to the main logger.", m.slowRequests.Load())

	// Go runtime health, sampled at scrape time (scrape-rate traffic;
	// ReadMemStats is a brief stop-the-world).
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	g("corrd_go_goroutines", "Live goroutines.", int64(runtime.NumGoroutine()))
	g("corrd_go_heap_alloc_bytes", "Bytes of live heap objects.", int64(ms.HeapAlloc))
	g("corrd_go_heap_sys_bytes", "Heap memory obtained from the OS.", int64(ms.HeapSys))
	c("corrd_go_gcs_total", "Completed GC cycles.", uint64(ms.NumGC))
	fmt.Fprintf(w, "# HELP corrd_go_gc_pause_total_seconds Cumulative GC stop-the-world pause time.\n")
	fmt.Fprintf(w, "# TYPE corrd_go_gc_pause_total_seconds counter\n")
	fmt.Fprintf(w, "corrd_go_gc_pause_total_seconds %g\n", float64(ms.PauseTotalNs)/1e9)
	fmt.Fprintf(w, "# HELP corrd_build_info Build metadata; the value is always 1.\n")
	fmt.Fprintf(w, "# TYPE corrd_build_info gauge\n")
	fmt.Fprintf(w, "%s\n", m.buildInfo)
}

func formatBound(b float64) string { return fmt.Sprintf("%g", b) }
